//! The shard fleet: K engines behind one ingest/refit/predict surface, with
//! fleet-wide snapshot/restore.
//!
//! A [`Fleet`] owns `K` [`cpa_core::engine::Engine`]s, one per shard of the
//! item space (see [`crate::router::ShardRouter`]). Every arrival batch is
//! shard-split and handed to the shards **on the workspace thread pool**
//! (the PR 2 `rayon` shim), one task per shard; results are merged back in
//! shard order, so any pool width is bit-identical to the serial path.
//!
//! # Split read/write paths
//!
//! Mutations (`Ingest`/`Refit`/`Restore`) flow through one interpreter,
//! [`Fleet::apply`], in one global order; each accepted mutation bumps the
//! fleet **epoch** and publishes an immutable [`crate::view::ReadView`]
//! through the fleet's [`crate::view::ViewHandle`]. Publication is
//! **incremental**: `apply` computes the mutation's **dirty-shard set**
//! (an `Ingest` dirties exactly the shards its batch routed answers to;
//! `Refit`/`Restore` dirty all), and the new view carries the clean
//! shards' already-filled per-shard slabs forward by `Arc` — zero
//! recompute, zero copy. Reads (`Predict`/`Estimate`, full or
//! item-ranged) are answered **from the published view**, not by
//! re-driving the shards: the first read of an epoch computes only the
//! dirty shards' slabs and fills the view's cells, every later read of
//! that epoch is a cache hit — in-process callers get memoized
//! `predict_all`/`estimate_all`/`predict_items`/`estimate_items`, and
//! transport connection handlers serve reads concurrently with mutations
//! without a driver round trip (see `cpa-transport`).
//!
//! # Determinism contract
//!
//! Locked by `tests/shard_determinism.rs` and `tests/read_view_stress.rs`:
//!
//! - the fleet's merged predictions are **bit-identical** to driving each
//!   shard's engine standalone over the *non-empty* batches of that
//!   shard's universe split (a shard's engine observes exactly the
//!   arrival batches that routed answers to it — see
//!   [`Fleet::apply`]'s dirty-shard rule);
//! - [`Fleet::snapshot`] → JSON → [`Fleet::restore`] → continue is
//!   bit-identical to never pausing, at every thread count;
//! - replaying the recorded mutation prefix up to epoch E
//!   ([`Fleet::replay_to_epoch`]) reproduces exactly the predictions a
//!   reader was served at E.
//!
//! These follow from the engines' own checkpoint contract plus two fleet
//! invariants: the shard split is deterministic, and merges always read
//! shards in shard order.
//!
//! # What sharding trades away
//!
//! Shards never exchange posterior state: a shard infers worker communities
//! from its own items only. K=1 is exactly the unsharded engine; larger K
//! buys ingest/refit parallelism and a smaller per-shard working set at the
//! cost of cross-shard pooling (measured by the `sharded` experiment in
//! `cpa-eval`).

use crate::protocol::{FleetOp, FleetReply, ItemEstimate};
use crate::router::{ShardIndex, ShardRouter};
use crate::view::{ReadKind, ReadView, ViewHandle};
use cpa_core::engine::{Checkpoint, CheckpointError, DynEngine, RestoreFn};
use cpa_core::truth::TruthEstimate;
use cpa_data::answers::{AnswerMatrix, AnswerMatrixBuilder};
use cpa_data::labels::LabelSet;
use cpa_data::queue::{validate_batch, QueueError};
use cpa_data::stream::{BatchSource, WorkerBatch};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Format version written into every [`FleetManifest`]. Bump on any
/// incompatible change to the manifest layout.
///
/// History: v1 — per-shard checkpoints + population shape; v2 — the
/// manifest additionally captures the fleet's **arrival state**
/// (`arrived_workers`, `batches_ingested`), so a restored fleet keeps
/// enforcing the worker-partition contract and numbers its next arrival
/// batch exactly as the uninterrupted run would; v3 — the manifest records
/// the fleet **epoch** (accepted-mutation count), so a restored fleet tags
/// read replies exactly as the uninterrupted run would and
/// [`Fleet::replay_to_epoch`] works across a restore.
pub const FLEET_MANIFEST_VERSION: u32 = 3;

/// Magic prefix of a **binary** fleet manifest (followed by a `u32` LE
/// format version and the `cpa_data::codec` payload). JSON manifests never
/// start with these bytes, so [`FleetManifest::from_bytes`] dispatches on
/// this tag.
pub const FLEET_MANIFEST_MAGIC: [u8; 4] = *b"CPAM";

/// Where [`Fleet::replay_until`] stops consuming a recorded op stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopAt {
    /// Stop after (and including) the first [`FleetOp::Shutdown`] — the
    /// behaviour of [`Fleet::replay`] and of the live server: the recorded
    /// run ended there, so does the replay.
    Shutdown,
    /// Consume the whole stream; `Shutdown` ops are acknowledged and
    /// skipped like any other non-mutating op. This is the replication
    /// follower's mode: a shutdown marker in the *leader's* log must not
    /// stop the *follower* from tailing past it.
    End,
}

/// A sharded serving fleet: K engines, one per item shard, driven together.
///
/// Every mutation flows through one interpreter, [`Fleet::apply`], taking a
/// [`FleetOp`] and returning a [`FleetReply`]; the named methods (`ingest`,
/// `refit_all`, …) are thin wrappers that build the corresponding op. See
/// the [`crate::protocol`] docs for what that buys (transports, op-logs,
/// replay).
pub struct Fleet {
    router: ShardRouter,
    /// The router's assignment materialized over the item universe, shared
    /// (`Arc`) with every published read view.
    index: Arc<ShardIndex>,
    threads: usize,
    pool: Option<rayon::ThreadPool>,
    engines: Vec<DynEngine>,
    num_items: usize,
    num_workers: usize,
    num_labels: usize,
    /// Workers that already arrived, across every ingest path — the fleet's
    /// copy of the queue arrival contract (`cpa_data::queue`).
    arrived: BTreeSet<usize>,
    /// Arrival batches absorbed so far; the next batch is numbered
    /// `batches_ingested + 1`, matching the queue's 1-based numbering.
    batches_ingested: usize,
    /// Engine-construction hook for [`FleetOp::Restore`]; `None` until
    /// installed by [`Fleet::with_restore_hook`] or [`Fleet::restore`].
    restore_hook: Option<RestoreFn>,
    /// Accepted mutations applied so far; every read reply is tagged with
    /// the epoch of the view it was answered from.
    epoch: u64,
    /// The fleet's published read view: swapped (empty) on every accepted
    /// mutation, filled lazily by the first read of each epoch.
    views: ViewHandle,
}

impl std::fmt::Debug for Fleet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleet")
            .field("num_shards", &self.router.num_shards())
            .field("threads", &self.threads)
            .field(
                "engines",
                &self.engines.iter().map(|e| e.name()).collect::<Vec<_>>(),
            )
            .field("num_items", &self.num_items)
            .field("num_workers", &self.num_workers)
            .field("num_labels", &self.num_labels)
            .field("arrived_workers", &self.arrived.len())
            .field("batches_ingested", &self.batches_ingested)
            .field("epoch", &self.epoch)
            .finish()
    }
}

/// Runs one closure per shard payload, on the pool when one is installed.
/// Output order always follows input (shard) order, which is what makes the
/// fleet bit-deterministic in the thread count.
fn per_shard<T: Send, R: Send>(
    pool: Option<&rayon::ThreadPool>,
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync + Send,
) -> Vec<R> {
    match pool {
        Some(pool) => pool.install(|| items.into_par_iter().map(f).collect()),
        None => items.into_iter().map(f).collect(),
    }
}

impl Fleet {
    /// Builds a fleet of `num_shards` engines over a global
    /// `num_items × num_workers × num_labels` population, constructing each
    /// shard's engine with `factory` (called with the shard index). Shard
    /// work fans out over `threads` OS threads (0 or 1 = serial).
    ///
    /// Every engine must be built at the *global* population shape — item
    /// and worker indices are never remapped.
    ///
    /// # Panics
    /// Panics if `num_shards == 0` or a factory-built engine does not have
    /// the global population shape.
    pub fn new(
        num_shards: usize,
        threads: usize,
        num_items: usize,
        num_workers: usize,
        num_labels: usize,
        mut factory: impl FnMut(usize) -> DynEngine,
    ) -> Self {
        let router = ShardRouter::new(num_shards);
        let engines: Vec<DynEngine> = (0..num_shards).map(&mut factory).collect();
        for (s, engine) in engines.iter().enumerate() {
            let seen = engine.seen_answers();
            assert!(
                seen.num_items() == num_items
                    && seen.num_workers() == num_workers
                    && seen.num_labels() == num_labels,
                "shard {s} engine has shape {}x{}x{}, fleet is {num_items}x{num_workers}x{num_labels}",
                seen.num_items(),
                seen.num_workers(),
                seen.num_labels(),
            );
        }
        let index = Arc::new(ShardIndex::new(router, num_items));
        Self {
            router,
            views: ViewHandle::new(0, index.clone()),
            index,
            threads,
            pool: build_pool(threads),
            engines,
            num_items,
            num_workers,
            num_labels,
            arrived: BTreeSet::new(),
            batches_ingested: 0,
            restore_hook: None,
            epoch: 0,
        }
    }

    /// Installs the engine-construction hook [`FleetOp::Restore`] restores
    /// shards through (`cpa-eval`'s `restore_engine` covers every built-in
    /// method). Without one, `Restore` ops are rejected with an error reply.
    #[must_use]
    pub fn with_restore_hook(mut self, restore: RestoreFn) -> Self {
        self.restore_hook = Some(restore);
        self
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.router.num_shards()
    }

    /// The fleet's item → shard router.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The fleet's materialized item → shard index (shared with every
    /// published read view).
    pub fn shard_index(&self) -> Arc<ShardIndex> {
        self.index.clone()
    }

    /// Borrow one shard's engine (for inspection; driving goes through the
    /// fleet methods so the shard split stays consistent).
    pub fn shard(&self, shard: usize) -> &dyn cpa_core::engine::Engine {
        self.engines[shard].as_ref()
    }

    /// Total answers absorbed across all shards.
    pub fn num_answers_seen(&self) -> usize {
        self.engines
            .iter()
            .map(|e| e.seen_answers().num_answers())
            .sum()
    }

    /// Applies one [`FleetOp`] — **the** interpreter every fleet mutation
    /// flows through. The named methods (`ingest`, `refit_all`, `drive`,
    /// `snapshot`) lower into ops and call this, so a transport, an op-log
    /// replay, and in-process code all share one set of semantics:
    ///
    /// - `Ingest` validates the batch against the queue arrival contract
    ///   ([`cpa_data::queue::validate_batch`] — worker partition, in-range
    ///   indices, non-empty labels) **before anything is mutated**, then
    ///   shard-splits it and ingests it into exactly the shards the batch
    ///   routed answers to (its **dirty set** — a batch with no answers
    ///   degenerates to stepping every shard), numbering it
    ///   `batches_ingested + 1`;
    /// - `Refit` refits every shard concurrently (dirties all);
    /// - `Predict` / `Estimate` are reads, answered from (and memoized in)
    ///   the current epoch's published [`crate::view::ReadView`] — the
    ///   first read of an epoch computes only the per-shard slabs the view
    ///   is missing (clean shards' slabs were carried forward at publish),
    ///   later reads of the same epoch are cache hits;
    /// - `PredictItems` / `EstimateItems` are item-ranged reads: they fill
    ///   only the slabs of the shards owning the requested items and echo
    ///   the request order (duplicates allowed; an out-of-range item
    ///   rejects the whole op);
    /// - `Snapshot` reads the raw engine state (never the view) into a
    ///   manifest;
    /// - `Restore` replaces the whole fleet from a manifest through the
    ///   installed restore hook (rejected if none is installed);
    /// - `SubscribeOps` is a read that acks the current epoch
    ///   ([`FleetReply::Subscribed`]); the mutation-stream push it requests
    ///   is an interpreter concern (the `cpa-transport` server retains the
    ///   subscription and ships [`FleetReply::OpApplied`] frames), not a
    ///   fleet mutation;
    /// - `SubscribeReads` is a read that returns the bootstrap snapshot —
    ///   a [`FleetReply::PredictedDelta`] / [`FleetReply::EstimatedDelta`]
    ///   carrying every subscribed item's row at the current epoch; the
    ///   per-mutation delta push it requests is likewise an interpreter
    ///   concern;
    /// - `Shutdown` is acknowledged and leaves the fleet untouched — it is
    ///   a signal to whatever is consuming the op stream.
    ///
    /// Every **accepted mutation** bumps the fleet epoch and publishes the
    /// next view *before* the ack reply is built, so a client that observes
    /// the ack reads at least that epoch afterwards. The new view starts
    /// empty only where the mutation dirtied: clean shards' filled slabs
    /// carry forward pointer-identically. A rejected op returns
    /// [`FleetReply::Error`], leaves the fleet exactly as it was, and does
    /// not bump the epoch.
    pub fn apply(&mut self, op: FleetOp) -> FleetReply {
        match op {
            FleetOp::Ingest { workers, answers } => match self.apply_ingest(workers, answers) {
                Ok((batch, dirty)) => {
                    let epoch = self.bump_epoch(&dirty);
                    FleetReply::Ingested { batch, epoch }
                }
                Err(e) => FleetReply::err(e),
            },
            FleetOp::Refit => {
                let engines = std::mem::take(&mut self.engines);
                self.engines = per_shard(self.pool.as_ref(), engines, |mut engine| {
                    engine.refit();
                    engine
                });
                let epoch = self.bump_epoch(&vec![true; self.num_shards()]);
                FleetReply::Refitted { epoch }
            }
            FleetOp::Predict => {
                let view = self.views.current();
                let predictions = view.predictions_or_init(|| self.merge_predictions(&view));
                FleetReply::Predictions {
                    predictions: (*predictions).clone(),
                    epoch: view.epoch(),
                }
            }
            FleetOp::Estimate => {
                let view = self.views.current();
                let estimate = view.estimate_or_init(|| self.merge_estimate(&view));
                FleetReply::Estimated {
                    estimate: (*estimate).clone(),
                    epoch: view.epoch(),
                }
            }
            FleetOp::PredictItems { items } => {
                let view = self.views.current();
                match self.try_predict_items(&view, &items) {
                    Ok(predictions) => FleetReply::PredictedItems {
                        items,
                        predictions,
                        epoch: view.epoch(),
                    },
                    Err(e) => FleetReply::err(e),
                }
            }
            FleetOp::EstimateItems { items } => {
                let view = self.views.current();
                match self.try_estimate_items(&view, &items) {
                    Ok(rows) => FleetReply::EstimatedItems {
                        items,
                        rows,
                        epoch: view.epoch(),
                    },
                    Err(e) => FleetReply::err(e),
                }
            }
            FleetOp::Snapshot => FleetReply::Manifest {
                manifest: self.snapshot(),
            },
            FleetOp::Restore { manifest } => match self.restore_hook {
                Some(hook) => match Fleet::restore(manifest, self.threads, hook) {
                    Ok(mut restored) => {
                        // Keep existing reader handles live across the
                        // restore: re-attach this fleet's handle and reset
                        // it to a fresh view at the restored (manifest)
                        // epoch over the restored index — a restore dirties
                        // everything and may change the shard count.
                        restored.views = self.views.clone();
                        restored.views.reset(restored.epoch, restored.index.clone());
                        let epoch = restored.epoch;
                        *self = restored;
                        FleetReply::Restored { epoch }
                    }
                    Err(e) => FleetReply::err(e),
                },
                None => FleetReply::err("no restore hook installed (see Fleet::with_restore_hook)"),
            },
            FleetOp::SubscribeOps { .. } => FleetReply::Subscribed { epoch: self.epoch },
            FleetOp::SubscribeReads { kind, items } => self.read_bootstrap(kind, items),
            FleetOp::Shutdown => FleetReply::ShuttingDown,
        }
    }

    /// Commits one accepted mutation to the read path: bump the epoch and
    /// publish the next lazily-filled view, carrying forward the filled
    /// slabs of every shard `dirty` marks clean. Returns the new epoch.
    fn bump_epoch(&mut self, dirty: &[bool]) -> u64 {
        self.epoch += 1;
        self.views.publish(self.epoch, dirty);
        self.epoch
    }

    /// The `Ingest` arm of [`Fleet::apply`]: validate against the arrival
    /// contract, convert the triples into per-shard views, ingest the
    /// routed shards concurrently, then (and only then) commit the arrival
    /// state. Returns the batch number and the dirty-shard set.
    fn apply_ingest(
        &mut self,
        workers: Vec<usize>,
        answers: Vec<(usize, usize, Vec<usize>)>,
    ) -> Result<(usize, Vec<bool>), QueueError> {
        // Label indices are range-checked up front so `LabelSet` construction
        // below cannot panic on a bad op.
        for &(item, worker, ref labels) in &answers {
            if let Some(&c) = labels.iter().find(|&&c| c >= self.num_labels) {
                return Err(QueueError::OutOfRange {
                    worker: Some(worker),
                    message: format!(
                        "label {c} for item {item} (universe has {})",
                        self.num_labels
                    ),
                });
            }
        }
        let triples: Vec<(usize, usize, LabelSet)> = answers
            .into_iter()
            .map(|(item, worker, labels)| {
                (item, worker, LabelSet::from_labels(self.num_labels, labels))
            })
            .collect();
        validate_batch(
            self.num_items,
            self.num_workers,
            self.num_labels,
            &self.arrived,
            &workers,
            &triples,
        )?;
        let index = self.batches_ingested + 1;
        // The batch's item set is derived from its answers (sorted,
        // deduplicated) — exactly how the live queue derives it.
        let mut items: Vec<usize> = triples.iter().map(|&(item, _, _)| item).collect();
        items.sort_unstable();
        items.dedup();
        let batch = WorkerBatch {
            index,
            workers,
            items,
        };
        let dirty = self.ingest_shard_split(triples, &batch);
        self.arrived.extend(batch.workers);
        self.batches_ingested = index;
        Ok((index, dirty))
    }

    /// Shard-splits one validated arrival batch (the same split
    /// [`cpa_data::stream::WorkerBatch::shard_split`] computes, fused with
    /// building each shard's view of the batch answers into one scan of the
    /// batch triples), then runs `ingest` concurrently on exactly the
    /// shards the batch routed answers to. Returns that **dirty set**.
    ///
    /// Shards with an empty split are skipped entirely — their engines
    /// observe nothing, so their published read slabs stay valid and carry
    /// forward across the epoch. A shard's engine therefore steps once per
    /// arrival batch that routed answers to it, exactly matching a
    /// standalone engine driven over the non-empty batches of that shard's
    /// split stream. The degenerate batch with no answers at all routes
    /// nowhere; it steps (and dirties) every shard, which keeps K=1
    /// exactly the unsharded engine on any op stream.
    fn ingest_shard_split(
        &mut self,
        triples: Vec<(usize, usize, LabelSet)>,
        batch: &WorkerBatch,
    ) -> Vec<bool> {
        let k = self.num_shards();
        // One pass over each batch worker's answers decides shard
        // membership AND collects the shard views — the per-worker scan
        // `shard_split` would do, without doing it twice. Built serially
        // (cheap scans); the engine updates below are the parallel part.
        // Triples are grouped and inserted by move: the common 1-of-K
        // route never clones a `LabelSet`.
        let mut by_worker: std::collections::BTreeMap<usize, Vec<(usize, LabelSet)>> =
            std::collections::BTreeMap::new();
        for (item, worker, labels) in triples {
            by_worker.entry(worker).or_default().push((item, labels));
        }
        let mut shard_workers: Vec<Vec<usize>> = vec![Vec::new(); k];
        let mut views: Vec<AnswerMatrixBuilder> = (0..k)
            .map(|_| AnswerMatrixBuilder::new(self.num_items, self.num_workers, self.num_labels))
            .collect();
        let mut hit = vec![false; k];
        for &w in &batch.workers {
            hit.fill(false);
            for (item, labels) in by_worker.remove(&w).unwrap_or_default() {
                let s = self.router.route(item);
                hit[s] = true;
                views[s].insert(item, w, labels);
            }
            for (s, shard_hit) in hit.iter().enumerate() {
                if *shard_hit {
                    shard_workers[s].push(w);
                }
            }
        }
        let mut shard_items: Vec<Vec<usize>> = vec![Vec::new(); k];
        for &item in &batch.items {
            shard_items[self.router.route(item)].push(item);
        }
        let mut dirty: Vec<bool> = shard_items.iter().map(|items| !items.is_empty()).collect();
        if dirty.iter().all(|d| !d) {
            dirty.fill(true);
        }

        let mut parked: Vec<Option<DynEngine>> = std::mem::take(&mut self.engines)
            .into_iter()
            .map(Some)
            .collect();
        let mut work: Vec<(usize, DynEngine, AnswerMatrix, WorkerBatch)> = Vec::new();
        for (s, ((workers, items), view)) in shard_workers
            .into_iter()
            .zip(shard_items)
            .zip(views)
            .enumerate()
        {
            if !dirty[s] {
                continue;
            }
            let engine = parked[s].take().expect("engine parked");
            let shard_batch = WorkerBatch {
                index: batch.index,
                workers,
                items,
            };
            work.push((s, engine, view.build(), shard_batch));
        }
        let done = per_shard(
            self.pool.as_ref(),
            work,
            |(s, mut engine, view, shard_batch)| {
                engine.ingest(&view, &shard_batch);
                (s, engine)
            },
        );
        for (s, engine) in done {
            parked[s] = Some(engine);
        }
        self.engines = parked
            .into_iter()
            .map(|slot| slot.expect("every engine returned"))
            .collect();
        dirty
    }

    /// Ingests one arrival batch — a thin wrapper lowering the
    /// `(universe, batch)` surface into a self-contained
    /// [`FleetOp::Ingest`] and handing it to [`Fleet::apply`].
    ///
    /// The batch is renumbered by the fleet's own arrival counter (1, 2, …
    /// in apply order) and its item set is derived from the batch workers'
    /// answers, exactly as the live queue derives it — identical to
    /// `batch.index`/`batch.items` for every batch a real
    /// [`BatchSource`] produces.
    ///
    /// # Panics
    /// Panics if `answers` does not have the fleet's global shape, or if
    /// the batch violates the queue arrival contract (e.g. a worker that
    /// already arrived) — push through [`cpa_data::queue`] or use
    /// [`Fleet::apply`] directly to handle rejections without panicking.
    pub fn ingest(&mut self, answers: &AnswerMatrix, batch: &WorkerBatch) {
        assert!(
            answers.num_items() == self.num_items
                && answers.num_workers() == self.num_workers
                && answers.num_labels() == self.num_labels,
            "batch universe shape mismatch"
        );
        debug_assert!(
            batch.items.windows(2).all(|w| w[0] < w[1]),
            "WorkerBatch.items must be sorted and deduplicated (batch {})",
            batch.index
        );
        match self.apply(FleetOp::ingest_from(answers, batch)) {
            FleetReply::Ingested { .. } => {}
            FleetReply::Error { message } => {
                panic!("fleet rejected arrival batch {}: {message}", batch.index)
            }
            other => unreachable!("Ingest op answered with {}", other.name()),
        }
    }

    /// Refits every shard concurrently (no-op for incremental engines) —
    /// a thin wrapper over [`FleetOp::Refit`].
    pub fn refit_all(&mut self) {
        let reply = self.apply(FleetOp::Refit);
        debug_assert!(matches!(reply, FleetReply::Refitted { .. }));
    }

    /// Pulls every batch out of `source`, lowers each into a
    /// [`FleetOp::Ingest`], and finishes with one [`FleetOp::Refit`] — the
    /// fleet analogue of [`cpa_core::engine::drive`], now an op-stream
    /// consumer over [`Fleet::apply`].
    pub fn drive(&mut self, source: &mut dyn BatchSource) {
        while let Some(batch) = source.next_batch() {
            self.ingest(source.answers(), &batch);
        }
        self.refit_all();
    }

    /// Applies a recorded op stream in order, returning one reply per op
    /// consumed. Stops after (and including) the first
    /// [`FleetOp::Shutdown`], as the live server does — shorthand for
    /// [`Fleet::replay_until`] with [`StopAt::Shutdown`].
    ///
    /// Replaying the op-log of a live run against a fresh fleet of the same
    /// construction reproduces the live fleet's snapshot byte for byte.
    pub fn replay(&mut self, ops: impl IntoIterator<Item = FleetOp>) -> Vec<FleetReply> {
        self.replay_until(ops, StopAt::Shutdown)
    }

    /// [`Fleet::replay`] with the stop behaviour spelled out. The implicit
    /// stop-at-`Shutdown` is right for *local* replay (the op stream ends
    /// where the recorded server stopped), but wrong for a replication
    /// follower tailing a leader's log: the **leader's** shutdown marker
    /// must not be read as the follower's — a follower replays with
    /// [`StopAt::End`], where `Shutdown` is acknowledged and skipped like
    /// any non-mutating op, and the stream simply continues (locked by
    /// `tests/replication.rs`).
    pub fn replay_until(
        &mut self,
        ops: impl IntoIterator<Item = FleetOp>,
        stop_at: StopAt,
    ) -> Vec<FleetReply> {
        let mut replies = Vec::new();
        for op in ops {
            let stop = stop_at == StopAt::Shutdown && matches!(op, FleetOp::Shutdown);
            replies.push(self.apply(op));
            if stop {
                break;
            }
        }
        replies
    }

    /// Arrival batches absorbed so far (the next batch is numbered one
    /// higher).
    pub fn batches_ingested(&self) -> usize {
        self.batches_ingested
    }

    /// Accepted mutations applied so far — the epoch every read reply is
    /// tagged with. After a `Restore` this is the *manifest's* recorded
    /// epoch, which may be lower than before (a new lineage).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A cloneable handle onto the fleet's published read view. Transport
    /// handlers (and any other concurrent reader) answer `Predict` /
    /// `Estimate` through this without touching the fleet; the handle stays
    /// valid across every mutation, including `Restore`.
    pub fn view_handle(&self) -> ViewHandle {
        self.views.clone()
    }

    /// Fills the **current** view's `kind` slabs for `shards`, computing
    /// only the missing ones (out-of-range shard indices are ignored). This
    /// is the pre-push warm step of a read-delta broadcast: the transport
    /// driver warms exactly the dirty shards its subscriptions cover right
    /// after publishing a mutation's view, so connection handlers — which
    /// have no engine access — can encode delta rows straight from the
    /// view's slabs.
    pub fn warm_view(&self, kind: ReadKind, shards: &[usize]) {
        let in_range: Vec<usize> = shards
            .iter()
            .copied()
            .filter(|&s| s < self.num_shards())
            .collect();
        if in_range.is_empty() {
            return;
        }
        let view = self.views.current();
        match kind {
            ReadKind::Predictions => self.fill_shard_predictions(&view, &in_range),
            ReadKind::Estimate => self.fill_shard_estimates(&view, &in_range),
        }
    }

    /// Replays ops from `ops` until the fleet's epoch reaches `epoch`, then
    /// stops (without consuming further ops). Returns one reply per op
    /// consumed, like [`Fleet::replay`]; also stops after a `Shutdown` op or
    /// when `ops` runs dry, whichever comes first.
    ///
    /// This is the **replay-to-epoch guarantee** behind read-reply tags:
    /// replaying a recorded mutation prefix until the epoch a client was
    /// served at reproduces that view's predictions bit for bit (locked by
    /// `tests/read_view_stress.rs`).
    pub fn replay_to_epoch(
        &mut self,
        ops: impl IntoIterator<Item = FleetOp>,
        epoch: u64,
    ) -> Vec<FleetReply> {
        let mut replies = Vec::new();
        if self.epoch == epoch {
            return replies;
        }
        for op in ops {
            let stop = matches!(op, FleetOp::Shutdown);
            replies.push(self.apply(op));
            if stop || self.epoch == epoch {
                break;
            }
        }
        replies
    }

    /// Merged consensus predictions in global item order, **memoized per
    /// epoch**: the first call after a mutation computes only the shard
    /// slabs the current [`crate::view::ReadView`] is missing (clean
    /// shards' slabs were carried forward at publish) and fills the merged
    /// cell; repeated calls at the same epoch are cache hits (any accepted
    /// mutation publishes the next view, which is what invalidates).
    pub fn predict_all(&self) -> Vec<LabelSet> {
        let view = self.views.current();
        (*view.predictions_or_init(|| self.merge_predictions(&view))).clone()
    }

    /// Consensus predictions for exactly `items`, echoed in request order
    /// (duplicates allowed) — the in-process `PredictItems` surface. Only
    /// the owning shards' slabs are computed (or reused), so the cost is
    /// bounded by the request, not the universe.
    ///
    /// # Panics
    /// Panics on an out-of-range item; use [`Fleet::apply`] with
    /// [`FleetOp::PredictItems`] to get an error reply instead.
    pub fn predict_items(&self, items: &[usize]) -> Vec<LabelSet> {
        let view = self.views.current();
        self.try_predict_items(&view, items)
            .expect("requested item outside the universe")
    }

    /// Per-item soft-truth rows for exactly `items`, echoed in request
    /// order — the in-process `EstimateItems` surface (see
    /// [`crate::protocol::ItemEstimate`] for what a row carries).
    ///
    /// # Panics
    /// Panics on an out-of-range item; use [`Fleet::apply`] with
    /// [`FleetOp::EstimateItems`] to get an error reply instead.
    pub fn estimate_items(&self, items: &[usize]) -> Vec<ItemEstimate> {
        let view = self.views.current();
        self.try_estimate_items(&view, items)
            .expect("requested item outside the universe")
    }

    /// The shards owning `items` (deduplicated, ascending), or the
    /// offending item on a range violation.
    fn ranged_shards(&self, items: &[usize]) -> Result<Vec<usize>, String> {
        let mut needed = vec![false; self.num_shards()];
        for &i in items {
            if i >= self.num_items {
                return Err(format!(
                    "item {i} outside the {}-item universe",
                    self.num_items
                ));
            }
            needed[self.router.route(i)] = true;
        }
        Ok(needed
            .iter()
            .enumerate()
            .filter_map(|(s, &n)| n.then_some(s))
            .collect())
    }

    /// Fills every missing predictions slab among `shards` on `view`,
    /// concurrently, in shard order.
    fn fill_shard_predictions(&self, view: &ReadView, shards: &[usize]) {
        let missing: Vec<(usize, &DynEngine)> = shards
            .iter()
            .filter(|&&s| view.shard_predictions(s).is_none())
            .map(|&s| (s, &self.engines[s]))
            .collect();
        if missing.is_empty() {
            return;
        }
        let computed = per_shard(self.pool.as_ref(), missing, |(s, engine)| {
            (s, engine.predict_all())
        });
        for (s, preds) in computed {
            view.shard_predictions_or_init(s, || preds);
        }
    }

    /// Fills every missing estimate slab among `shards` on `view`,
    /// concurrently, in shard order.
    fn fill_shard_estimates(&self, view: &ReadView, shards: &[usize]) {
        let missing: Vec<(usize, &DynEngine)> = shards
            .iter()
            .filter(|&&s| view.shard_estimate(s).is_none())
            .map(|&s| (s, &self.engines[s]))
            .collect();
        if missing.is_empty() {
            return;
        }
        let computed = per_shard(self.pool.as_ref(), missing, |(s, engine)| {
            (s, engine.estimate())
        });
        for (s, est) in computed {
            view.shard_estimate_or_init(s, || est);
        }
    }

    /// The ranged-read merge behind `PredictItems`: fill the owning
    /// shards' slabs, then gather the requested items in request order.
    fn try_predict_items(&self, view: &ReadView, items: &[usize]) -> Result<Vec<LabelSet>, String> {
        let shards = self.ranged_shards(items)?;
        self.fill_shard_predictions(view, &shards);
        let mut slabs: Vec<Option<Arc<Vec<LabelSet>>>> = vec![None; self.num_shards()];
        for &s in &shards {
            slabs[s] = view.shard_predictions(s);
        }
        Ok(items
            .iter()
            .map(|&i| slabs[self.router.route(i)].as_ref().expect("slab filled")[i].clone())
            .collect())
    }

    /// The ranged-read merge behind `EstimateItems`: fill the owning
    /// shards' slabs, then slice the requested items' rows in request
    /// order. Rows equal the corresponding slices of the merged
    /// [`Fleet::estimate_all`] — per-item fields come verbatim from the
    /// owning shard in both.
    fn try_estimate_items(
        &self,
        view: &ReadView,
        items: &[usize],
    ) -> Result<Vec<ItemEstimate>, String> {
        let shards = self.ranged_shards(items)?;
        self.fill_shard_estimates(view, &shards);
        let mut slabs: Vec<Option<Arc<TruthEstimate>>> = vec![None; self.num_shards()];
        for &s in &shards {
            slabs[s] = view.shard_estimate(s);
        }
        Ok(items
            .iter()
            .map(|&i| {
                let est = slabs[self.router.route(i)].as_ref().expect("slab filled");
                ItemEstimate::from_estimate(est, i)
            })
            .collect())
    }

    /// The `SubscribeReads` arm of [`Fleet::apply`]: normalize the item set
    /// (`None` = the whole universe; explicit lists are sorted and
    /// deduplicated, then echoed), and build the bootstrap snapshot — every
    /// subscribed item's row at the current epoch, with every covering
    /// shard listed dirty. The per-mutation push stream that follows is an
    /// interpreter concern.
    fn read_bootstrap(&self, kind: ReadKind, items: Option<Vec<usize>>) -> FleetReply {
        let items = match items {
            Some(mut list) => {
                list.sort_unstable();
                list.dedup();
                list
            }
            None => (0..self.num_items).collect(),
        };
        let dirty_shards = match self.ranged_shards(&items) {
            Ok(shards) => shards,
            Err(e) => return FleetReply::err(e),
        };
        let view = self.views.current();
        match kind {
            ReadKind::Predictions => match self.try_predict_items(&view, &items) {
                Ok(predictions) => FleetReply::PredictedDelta {
                    items,
                    predictions,
                    dirty_shards,
                    epoch: view.epoch(),
                },
                Err(e) => FleetReply::err(e),
            },
            ReadKind::Estimate => match self.try_estimate_items(&view, &items) {
                Ok(rows) => FleetReply::EstimatedDelta {
                    items,
                    rows,
                    dirty_shards,
                    epoch: view.epoch(),
                },
                Err(e) => FleetReply::err(e),
            },
        }
    }

    /// The merged-cell fill behind [`Fleet::predict_all`]: ensure every
    /// shard's slab is on `view` (computing only the missing ones), then
    /// gather each item's label set from the shard that owns it.
    fn merge_predictions(&self, view: &ReadView) -> Vec<LabelSet> {
        let all: Vec<usize> = (0..self.num_shards()).collect();
        self.fill_shard_predictions(view, &all);
        let slabs: Vec<Arc<Vec<LabelSet>>> = all
            .iter()
            .map(|&s| view.shard_predictions(s).expect("slab filled"))
            .collect();
        (0..self.num_items)
            .map(|i| slabs[self.router.route(i)][i].clone())
            .collect()
    }

    /// Merged soft-truth estimate in global item order, **memoized per
    /// epoch** exactly like [`Fleet::predict_all`].
    ///
    /// Per-item fields (`soft`, `expected_size`) come from the owning shard.
    /// A worker's weight is the answer-count-weighted mean of its weights in
    /// the shards it answered into (workers with no answers keep the neutral
    /// weight 1). `community_reliability` is left empty: community structure
    /// is a per-shard notion — read it from [`Fleet::shard`] estimates.
    pub fn estimate_all(&self) -> TruthEstimate {
        let view = self.views.current();
        (*view.estimate_or_init(|| self.merge_estimate(&view))).clone()
    }

    /// The merged-cell fill behind [`Fleet::estimate_all`], over the
    /// per-shard estimate slabs (computing only the missing ones).
    fn merge_estimate(&self, view: &ReadView) -> TruthEstimate {
        let all: Vec<usize> = (0..self.num_shards()).collect();
        self.fill_shard_estimates(view, &all);
        let shard_ests: Vec<Arc<TruthEstimate>> = all
            .iter()
            .map(|&s| view.shard_estimate(s).expect("slab filled"))
            .collect();
        let mut soft = Vec::with_capacity(self.num_items);
        let mut expected_size = Vec::with_capacity(self.num_items);
        for i in 0..self.num_items {
            let est = &shard_ests[self.router.route(i)];
            soft.push(est.soft[i].clone());
            expected_size.push(est.expected_size[i]);
        }
        let mut worker_weight = vec![1.0; self.num_workers];
        for (u, weight) in worker_weight.iter_mut().enumerate() {
            // (weight, answer count) per shard the worker answered into.
            let contribs: Vec<(f64, usize)> = shard_ests
                .iter()
                .zip(&self.engines)
                .filter_map(|(est, engine)| {
                    let n = engine.seen_answers().worker_answers(u).len();
                    (n > 0).then(|| (est.worker_weight[u], n))
                })
                .collect();
            match contribs.as_slice() {
                [] => {}
                // One shard saw every answer (always the case at K=1):
                // take its weight verbatim, not a `w·n/n` round trip.
                [(w, _)] => *weight = *w,
                many => {
                    let total: usize = many.iter().map(|&(_, n)| n).sum();
                    *weight = many.iter().map(|&(w, n)| w * n as f64).sum::<f64>() / total as f64;
                }
            }
        }
        TruthEstimate {
            soft,
            expected_size,
            worker_weight,
            community_reliability: Vec::new(),
        }
    }

    /// Captures the whole fleet as a versioned manifest of per-shard
    /// checkpoints plus the arrival state (which workers arrived, how many
    /// batches were absorbed).
    pub fn snapshot(&self) -> FleetManifest {
        FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            num_items: self.num_items,
            num_workers: self.num_workers,
            num_labels: self.num_labels,
            arrived_workers: self.arrived.iter().copied().collect(),
            batches_ingested: self.batches_ingested,
            epoch: self.epoch,
            shards: self.engines.iter().map(|e| e.snapshot()).collect(),
        }
    }

    /// Rebuilds a fleet from a manifest, restoring each shard's engine
    /// through the `restore` hook (`cpa-eval`'s `restore_engine` covers
    /// every built-in method). Restore-then-continue is bit-identical to
    /// never pausing.
    ///
    /// # Errors
    /// Fails on a manifest/checkpoint version mismatch, a shard whose
    /// checkpoint does not restore, a shape mismatch, or a shard whose seen
    /// answers contain items it does not own (a reordered manifest).
    pub fn restore(
        manifest: FleetManifest,
        threads: usize,
        restore: RestoreFn,
    ) -> Result<Self, FleetError> {
        if manifest.version != FLEET_MANIFEST_VERSION {
            return Err(FleetError::Version {
                found: manifest.version,
                expected: FLEET_MANIFEST_VERSION,
            });
        }
        if manifest.shards.is_empty() {
            return Err(FleetError::Invalid("manifest has zero shards".into()));
        }
        let router = ShardRouter::new(manifest.shards.len());
        let arrived: BTreeSet<usize> = manifest.arrived_workers.iter().copied().collect();
        if arrived.len() != manifest.arrived_workers.len() {
            return Err(FleetError::Invalid(
                "manifest lists an arrived worker twice".into(),
            ));
        }
        if let Some(&w) = arrived.iter().find(|&&w| w >= manifest.num_workers) {
            return Err(FleetError::Invalid(format!(
                "arrived worker {w} outside the {}-worker universe",
                manifest.num_workers
            )));
        }
        let mut engines = Vec::with_capacity(manifest.shards.len());
        for (s, checkpoint) in manifest.shards.into_iter().enumerate() {
            let engine =
                restore(checkpoint).map_err(|source| FleetError::Shard { shard: s, source })?;
            let seen = engine.seen_answers();
            if seen.num_items() != manifest.num_items
                || seen.num_workers() != manifest.num_workers
                || seen.num_labels() != manifest.num_labels
            {
                return Err(FleetError::Invalid(format!(
                    "shard {s} restored at shape {}x{}x{}, manifest says {}x{}x{}",
                    seen.num_items(),
                    seen.num_workers(),
                    seen.num_labels(),
                    manifest.num_items,
                    manifest.num_workers,
                    manifest.num_labels
                )));
            }
            for i in 0..seen.num_items() {
                if !seen.item_answers(i).is_empty() && router.route(i) != s {
                    return Err(FleetError::Invalid(format!(
                        "shard {s} holds answers for item {i}, owned by shard {} — \
                         manifest shards out of order?",
                        router.route(i)
                    )));
                }
            }
            for u in 0..seen.num_workers() {
                if !seen.worker_answers(u).is_empty() && !arrived.contains(&u) {
                    return Err(FleetError::Invalid(format!(
                        "shard {s} holds answers by worker {u}, who is not in the \
                         manifest's arrived_workers — arrival state corrupted?"
                    )));
                }
            }
            engines.push(engine);
        }
        let index = Arc::new(ShardIndex::new(router, manifest.num_items));
        Ok(Self {
            router,
            views: ViewHandle::new(manifest.epoch, index.clone()),
            index,
            threads,
            pool: build_pool(threads),
            engines,
            num_items: manifest.num_items,
            num_workers: manifest.num_workers,
            num_labels: manifest.num_labels,
            arrived,
            batches_ingested: manifest.batches_ingested,
            restore_hook: Some(restore),
            epoch: manifest.epoch,
        })
    }
}

fn build_pool(threads: usize) -> Option<rayon::ThreadPool> {
    if threads > 1 {
        Some(
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .expect("thread pool builds"),
        )
    } else {
        None
    }
}

/// A durable capture of a whole fleet: format version, the global population
/// shape, the arrival state, and one [`Checkpoint`] per shard, in shard
/// order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetManifest {
    /// Manifest format version ([`FLEET_MANIFEST_VERSION`] at write time).
    pub version: u32,
    /// Global item dimension.
    pub num_items: usize,
    /// Global worker dimension.
    pub num_workers: usize,
    /// Global label dimension.
    pub num_labels: usize,
    /// Every worker that had arrived, sorted ascending — restored so the
    /// fleet keeps enforcing the worker-partition arrival contract.
    pub arrived_workers: Vec<usize>,
    /// Arrival batches absorbed at snapshot time — restored so the next
    /// batch is numbered exactly as the uninterrupted run would number it.
    pub batches_ingested: usize,
    /// The fleet epoch (accepted-mutation count) at snapshot time — a
    /// restored fleet resumes tagging read replies from here, so
    /// replay-to-epoch works across the restore.
    pub epoch: u64,
    /// Per-shard engine checkpoints, indexed by shard.
    pub shards: Vec<Checkpoint>,
}

impl FleetManifest {
    /// Serializes the manifest as one JSON document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("manifest serialises")
    }

    /// Parses a manifest from JSON, rejecting unknown format versions before
    /// the payload is decoded (the same version-first discipline as
    /// [`Checkpoint::from_json`]).
    ///
    /// # Errors
    /// Fails on malformed JSON or a version mismatch.
    pub fn from_json(text: &str) -> Result<Self, FleetError> {
        let value: serde::Value =
            serde_json::from_str(text).map_err(|e| FleetError::Json(e.to_string()))?;
        let version = value
            .get("version")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| FleetError::Json("missing `version` field".into()))?;
        if version != u64::from(FLEET_MANIFEST_VERSION) {
            return Err(FleetError::Version {
                found: version.try_into().unwrap_or(u32::MAX),
                expected: FLEET_MANIFEST_VERSION,
            });
        }
        serde::Deserialize::deserialize(&value).map_err(|e| FleetError::Json(e.to_string()))
    }

    /// Serializes the manifest as one binary document: the compact format
    /// for durable fleet snapshots (per-shard CSR arrays and parameters
    /// become raw little-endian slabs). [`FleetManifest::to_json`] remains
    /// the debug path; both restore bit-identically.
    pub fn to_binary(&self) -> Vec<u8> {
        cpa_data::codec::encode_container(
            FLEET_MANIFEST_MAGIC,
            self.version,
            &serde::Serialize::serialize(self),
        )
    }

    /// Parses a manifest from either encoding, dispatching on the format
    /// tag: documents starting with [`FLEET_MANIFEST_MAGIC`] decode as
    /// binary, anything else as UTF-8 JSON. Both paths check the format
    /// version *before* the payload is decoded.
    ///
    /// # Errors
    /// As [`FleetManifest::from_json`] / the binary equivalent.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FleetError> {
        if bytes.starts_with(&FLEET_MANIFEST_MAGIC) {
            return Self::from_binary(bytes);
        }
        let text = std::str::from_utf8(bytes).map_err(|e| {
            FleetError::Json(format!(
                "manifest is neither binary (no magic) nor UTF-8 JSON: {e}"
            ))
        })?;
        Self::from_json(text)
    }

    /// Parses a binary manifest written by [`FleetManifest::to_binary`],
    /// rejecting unknown format versions before the payload is decoded.
    ///
    /// # Errors
    /// Fails on a malformed document or a version mismatch.
    pub fn from_binary(bytes: &[u8]) -> Result<Self, FleetError> {
        let (version, payload) = cpa_data::codec::split_container(bytes, FLEET_MANIFEST_MAGIC)
            .map_err(|e| FleetError::Json(format!("binary manifest: {e}")))?;
        if version != FLEET_MANIFEST_VERSION {
            return Err(FleetError::Version {
                found: version,
                expected: FLEET_MANIFEST_VERSION,
            });
        }
        cpa_data::codec::from_bytes(payload)
            .map_err(|e| FleetError::Json(format!("binary manifest: {e}")))
    }
}

/// Why a fleet manifest could not be parsed or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// The manifest was written by an incompatible format version.
    Version {
        /// Version found in the document.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The document (JSON or binary) could not be parsed into a manifest.
    Json(String),
    /// One shard's checkpoint failed to restore.
    Shard {
        /// Which shard failed.
        shard: usize,
        /// The underlying checkpoint error.
        source: CheckpointError,
    },
    /// The manifest is internally inconsistent (shape mismatch, shards out
    /// of order, zero shards).
    Invalid(String),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::Version { found, expected } => {
                write!(
                    f,
                    "fleet manifest version {found} (this build reads {expected})"
                )
            }
            FleetError::Json(msg) => write!(f, "malformed fleet manifest JSON: {msg}"),
            FleetError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            FleetError::Invalid(msg) => write!(f, "inconsistent fleet manifest: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Shard { source, .. } => Some(source),
            _ => None,
        }
    }
}
