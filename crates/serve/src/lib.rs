//! **cpa-serve** — the sharded serving layer over the uniform engine seam.
//!
//! The paper's streaming inference (Algorithm 2/3) handles one answer
//! stream; serving heavy traffic needs many. This crate scales the
//! `cpa_core::engine::Engine` abstraction horizontally:
//!
//! - [`router::ShardRouter`] — deterministic item → shard routing (the
//!   canonical `cpa_data::stream::shard_of` hash) plus shard-local views of
//!   answer universes and arrival batches;
//! - [`protocol`] — the [`protocol::FleetOp`] / [`protocol::FleetReply`]
//!   command vocabulary every fleet mutation is expressed in, plus the
//!   versioned JSONL **op-log** ([`protocol::ops_to_jsonl`] /
//!   [`protocol::ops_from_jsonl`]) for record/replay;
//! - [`fleet::Fleet`] — K shards, each owning a `Box<dyn Engine + Send>`,
//!   driven concurrently on the workspace thread pool behind **one op
//!   interpreter**, [`fleet::Fleet::apply`] (the named
//!   `ingest` / `refit_all` / `predict_all` / `estimate_all` methods are
//!   thin wrappers), with per-item results merged back into global item
//!   order;
//! - [`fleet::FleetManifest`] — fleet-wide snapshot/restore as a versioned
//!   manifest of per-shard checkpoints plus arrival state (and the fleet
//!   epoch), with the same **bit-identical resume** guarantee the
//!   single-engine checkpoints give;
//! - [`view`] — the epoch-published read path: every accepted mutation
//!   bumps the fleet epoch and publishes an immutable
//!   [`view::ReadView`] through an `Arc`-swapped [`view::ViewHandle`], so
//!   `Predict`/`Estimate` — all-items or item-ranged
//!   (`PredictItems`/`EstimateItems`) — are answered (and their replies
//!   cached, value and encoded bytes alike, once per epoch) without
//!   re-driving the shards — and, over `cpa-transport`, without a driver
//!   round trip. Publication is **incremental**: shards untouched by a
//!   mutation carry their filled `Arc` slabs into the next epoch's view.
//! - [`push`] — the read-delta subscription cache: a [`push::ReadCache`]
//!   built from a `SubscribeReads` bootstrap applies the per-mutation
//!   delta frames a leader pushes (rows for only the dirty shards'
//!   subscribed items), holding, at every epoch, rows bit-identical to a
//!   poll refetch — zero-RTT reads off a one-way stream.
//! - [`replica`] — leader/follower replication by op shipping: a
//!   [`replica::Follower`] owns its own fleet and applies the leader's
//!   accepted mutations (from a live `SubscribeOps` stream over
//!   `cpa-transport`, or a tailed on-disk op-log via
//!   [`replica::OpLogTailFeed`]) through the same `Fleet::apply`
//!   interpreter, serving reads bit-identical to the leader at every epoch
//!   it reaches, with observable lag — failover is replay-to-head then
//!   [`replica::Follower::promote`].
//!
//! Live traffic enters through `cpa_data::queue::QueueSource` (any
//! `BatchSource` works — recorded JSONL replays and in-memory shuffles
//! drive a fleet the same way), or from another process through the
//! `cpa-transport` TCP front-end, which frames ops over a socket and
//! funnels them into [`fleet::Fleet::apply`].
//!
//! ```
//! use cpa_core::engine::DynEngine;
//! use cpa_core::{BatchCpa, CpaConfig};
//! use cpa_data::profile::DatasetProfile;
//! use cpa_data::queue::queue;
//! use cpa_data::simulate::simulate;
//! use cpa_serve::fleet::Fleet;
//!
//! let sim = simulate(&DatasetProfile::movie().scaled(0.04), 7);
//! let d = &sim.dataset;
//! let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
//!
//! // A 2-shard fleet of batch engines, fed over a live queue.
//! let mut fleet = Fleet::new(2, 1, i, u, c, |_| {
//!     Box::new(BatchCpa::new(CpaConfig::default().with_truncation(4, 5), i, u, c)) as DynEngine
//! });
//! let (producer, mut source) = queue(i, u, c);
//! let workers: Vec<usize> = (0..u).filter(|&w| !d.answers.worker_answers(w).is_empty()).collect();
//! producer.push_workers(&d.answers, &workers).unwrap();
//! drop(producer);
//! fleet.drive(&mut source);
//!
//! let consensus = fleet.predict_all();
//! assert_eq!(consensus.len(), i);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod fleet;
pub mod protocol;
pub mod push;
pub mod replica;
pub mod router;
pub mod view;

pub use fleet::{
    Fleet, FleetError, FleetManifest, StopAt, FLEET_MANIFEST_MAGIC, FLEET_MANIFEST_VERSION,
};
pub use protocol::{ops_from_jsonl, ops_to_jsonl, FleetOp, FleetReply, ItemEstimate};
pub use push::{AppliedDelta, PushError, ReadCache};
pub use replica::{Applied, Follower, OpFeed, OpLogTailFeed, ReplicaError, ShippedOp};
pub use router::{ShardIndex, ShardRouter};
pub use view::{ReadKind, ReadView, ReplyRef, ViewHandle, WIRE_SLOTS};

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_core::engine::{drive, DynEngine, Engine};
    use cpa_core::{BatchCpa, CpaConfig};
    use cpa_data::profile::DatasetProfile;
    use cpa_data::simulate::simulate;
    use cpa_data::stream::{MemorySource, WorkerStream};
    use cpa_math::rng::seeded;

    fn cfg() -> CpaConfig {
        CpaConfig::default().with_truncation(4, 5).with_seed(31)
    }

    fn batch_fleet(k: usize, threads: usize, i: usize, u: usize, c: usize) -> Fleet {
        Fleet::new(k, threads, i, u, c, |_| {
            Box::new(BatchCpa::new(cfg(), i, u, c)) as DynEngine
        })
    }

    #[test]
    fn single_shard_fleet_equals_plain_engine() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 31);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut rng = seeded(32);
        let batches = WorkerStream::new(d, 7, &mut rng).into_batches();

        let mut fleet = batch_fleet(1, 1, i, u, c);
        fleet.drive(&mut MemorySource::new(&d.answers, batches.clone()));

        let mut engine = BatchCpa::new(cfg(), i, u, c);
        drive(&mut engine, &mut MemorySource::new(&d.answers, batches));

        assert_eq!(fleet.predict_all(), engine.predict_all());
        assert_eq!(fleet.num_answers_seen(), d.answers.num_answers());
        let (fe, ee) = (fleet.estimate_all(), engine.estimate());
        assert_eq!(fe.soft, ee.soft);
        assert_eq!(fe.expected_size, ee.expected_size);
        assert_eq!(fe.worker_weight, ee.worker_weight);
    }

    #[test]
    fn sharded_fleet_covers_every_answer_exactly_once() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 33);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut rng = seeded(34);
        let batches = WorkerStream::new(d, 6, &mut rng).into_batches();
        let mut fleet = batch_fleet(4, 2, i, u, c);
        fleet.drive(&mut MemorySource::new(&d.answers, batches));
        assert_eq!(fleet.num_answers_seen(), d.answers.num_answers());
        // Each shard holds exactly the answers of the items it owns.
        let router = fleet.router();
        for s in 0..fleet.num_shards() {
            let seen = fleet.shard(s).seen_answers();
            for item in 0..i {
                let full = d.answers.item_answers(item);
                let here = seen.item_answers(item);
                if router.route(item) == s {
                    assert_eq!(here, full, "shard {s} item {item}");
                } else {
                    assert!(here.is_empty(), "shard {s} leaked item {item}");
                }
            }
        }
        let preds = fleet.predict_all();
        assert_eq!(preds.len(), i);
        assert!(preds.iter().all(|p| p.universe() == c));
    }

    #[test]
    fn epochs_count_accepted_mutations_and_survive_restore() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 41);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut rng = seeded(42);
        let batches = WorkerStream::new(d, 5, &mut rng).into_batches();
        let mut fleet = batch_fleet(2, 1, i, u, c);
        assert_eq!(fleet.epoch(), 0);
        fleet.drive(&mut MemorySource::new(&d.answers, batches));
        // drive = one Ingest per batch + one final Refit, all accepted.
        assert_eq!(fleet.epoch(), fleet.batches_ingested() as u64 + 1);
        let epoch = fleet.epoch();

        // Reads never bump the epoch, and fill the published view's cells
        // exactly once (the memoized in-process path).
        let preds = fleet.predict_all();
        assert_eq!(fleet.epoch(), epoch);
        let view = fleet.view_handle().current();
        assert_eq!(view.epoch(), epoch);
        assert_eq!(*view.predictions().expect("cell filled by read"), preds);
        match fleet.apply(FleetOp::Predict) {
            FleetReply::Predictions {
                predictions,
                epoch: tag,
            } => {
                assert_eq!(tag, epoch);
                assert_eq!(predictions, preds);
            }
            other => panic!("unexpected reply {}", other.name()),
        }

        // Rejected ops leave the epoch (and the published view) untouched.
        let manifest = fleet.snapshot();
        assert_eq!(manifest.epoch, epoch);
        let reply = fleet.apply(FleetOp::Restore {
            manifest: manifest.clone(),
        });
        assert!(
            matches!(reply, FleetReply::Error { .. }),
            "no hook installed"
        );
        assert_eq!(fleet.epoch(), epoch);

        // A restored fleet resumes tagging from the manifest's epoch.
        let restored = Fleet::restore(manifest, 1, |cp| {
            BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
        })
        .unwrap();
        assert_eq!(restored.epoch(), epoch);
        assert_eq!(restored.view_handle().current().epoch(), epoch);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 35);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut fleet = batch_fleet(2, 1, i, u, c);
        fleet.drive(&mut MemorySource::single_batch(&d.answers));
        let json = fleet.snapshot().to_json();
        let manifest = FleetManifest::from_json(&json).unwrap();
        let restored = Fleet::restore(manifest, 1, |cp| {
            BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
        })
        .unwrap();
        assert_eq!(restored.predict_all(), fleet.predict_all());
        assert_eq!(restored.num_answers_seen(), fleet.num_answers_seen());
    }

    #[test]
    fn manifest_binary_restore_is_bit_identical_to_json() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 36);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut fleet = batch_fleet(2, 1, i, u, c);
        fleet.drive(&mut MemorySource::single_batch(&d.answers));
        let manifest = fleet.snapshot();
        let bytes = manifest.to_binary();
        assert!(bytes.starts_with(&fleet::FLEET_MANIFEST_MAGIC));
        assert!(
            bytes.len() < manifest.to_json().len() / 2,
            "binary {} vs json {}",
            bytes.len(),
            manifest.to_json().len()
        );
        let restore = |m: FleetManifest| {
            Fleet::restore(m, 1, |cp| {
                BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
            })
            .unwrap()
        };
        let from_binary = restore(FleetManifest::from_bytes(&bytes).unwrap());
        let from_json = restore(FleetManifest::from_bytes(manifest.to_json().as_bytes()).unwrap());
        assert_eq!(from_binary.predict_all(), from_json.predict_all());
        // Bit-identical restores: re-snapshots render byte-identically.
        assert_eq!(
            from_binary.snapshot().to_json(),
            from_json.snapshot().to_json()
        );
        assert_eq!(from_binary.snapshot().to_json(), manifest.to_json());
    }

    #[test]
    fn binary_manifest_version_mismatch_is_rejected_before_payload() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 38);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut fleet = batch_fleet(1, 1, i, u, c);
        fleet.drive(&mut MemorySource::single_batch(&d.answers));
        let mut manifest = fleet.snapshot();
        manifest.version = FLEET_MANIFEST_VERSION + 1;
        let err = FleetManifest::from_bytes(&manifest.to_binary()).unwrap_err();
        assert!(
            matches!(err, FleetError::Version { found, .. } if found == FLEET_MANIFEST_VERSION + 1),
            "{err}"
        );
        // Truncated binary manifests are a named parse error, not a panic.
        let bytes = fleet.snapshot().to_binary();
        let err = FleetManifest::from_bytes(&bytes[..bytes.len() / 3]).unwrap_err();
        assert!(matches!(err, FleetError::Json(_)), "{err}");
    }

    #[test]
    fn manifest_version_mismatch_is_rejected_before_payload() {
        let text = format!(
            "{{\"version\": {}, \"num_items\": 1, \"num_workers\": 1, \"num_labels\": 1, \
             \"shards\": \"future\"}}",
            FLEET_MANIFEST_VERSION + 1
        );
        let err = FleetManifest::from_json(&text).unwrap_err();
        assert!(
            matches!(err, FleetError::Version { found, .. } if found == FLEET_MANIFEST_VERSION + 1),
            "{err}"
        );
    }

    #[test]
    fn reordered_manifest_shards_are_rejected() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 37);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut fleet = batch_fleet(2, 1, i, u, c);
        fleet.drive(&mut MemorySource::single_batch(&d.answers));
        let mut manifest = fleet.snapshot();
        manifest.shards.swap(0, 1);
        let err = Fleet::restore(manifest, 1, |cp| {
            BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
        })
        .unwrap_err();
        assert!(matches!(err, FleetError::Invalid(_)), "{err}");
    }

    #[test]
    fn shard_restore_failure_names_the_shard() {
        let sim = simulate(&DatasetProfile::movie().scaled(0.04), 39);
        let d = &sim.dataset;
        let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
        let mut fleet = batch_fleet(2, 1, i, u, c);
        fleet.drive(&mut MemorySource::single_batch(&d.answers));
        let mut manifest = fleet.snapshot();
        manifest.shards[1].engine = "no-such-engine".into();
        let err = Fleet::restore(manifest, 1, |cp| {
            BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
        })
        .unwrap_err();
        assert!(matches!(err, FleetError::Shard { shard: 1, .. }), "{err}");
    }

    #[test]
    fn empty_manifest_is_rejected() {
        let manifest = FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            num_items: 1,
            num_workers: 1,
            num_labels: 1,
            arrived_workers: Vec::new(),
            batches_ingested: 0,
            epoch: 0,
            shards: Vec::new(),
        };
        let err = Fleet::restore(manifest, 1, |cp| {
            BatchCpa::restore(cp).map(|e| Box::new(e) as DynEngine)
        })
        .unwrap_err();
        assert!(matches!(err, FleetError::Invalid(_)), "{err}");
    }
}
