//! Item → shard routing and the shard-local views it induces.
//!
//! The router is pure arithmetic over the canonical
//! [`cpa_data::stream::shard_of`] hash — no state, no configuration beyond
//! the shard count — so every component of the serving layer (the
//! [`crate::fleet::Fleet`], the determinism tests, external producers that
//! want to pre-partition traffic) computes the same assignment.
//!
//! Sharding partitions **items**: each shard owns a subset of the item
//! space and sees only the answers to its items, while the worker and label
//! dimensions stay global. Engines therefore keep the full population shape
//! (`num_items × num_workers × num_labels`), which keeps item/worker indices
//! stable across shards — merging predictions back into global item order is
//! a gather, not an index translation.

use cpa_data::answers::{AnswerMatrix, AnswerMatrixBuilder};
use cpa_data::stream::{shard_of, WorkerBatch};

/// Deterministic item → shard assignment for a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        Self { num_shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `item` (the canonical [`shard_of`] assignment).
    pub fn route(&self, item: usize) -> usize {
        shard_of(item, self.num_shards)
    }

    /// Splits a full answer universe into per-shard universes: shard `s`
    /// receives exactly the answers to its items, at the *global* population
    /// shape (unowned items are simply empty rows).
    pub fn split_answers(&self, answers: &AnswerMatrix) -> Vec<AnswerMatrix> {
        let mut builders: Vec<AnswerMatrixBuilder> = (0..self.num_shards)
            .map(|_| {
                AnswerMatrixBuilder::new(
                    answers.num_items(),
                    answers.num_workers(),
                    answers.num_labels(),
                )
            })
            .collect();
        for a in answers.iter() {
            builders[self.route(a.item as usize)].insert(
                a.item as usize,
                a.worker as usize,
                a.labels,
            );
        }
        builders
            .into_iter()
            .map(AnswerMatrixBuilder::build)
            .collect()
    }

    /// Splits one arrival batch into per-shard batches — delegates to
    /// [`WorkerBatch::shard_split`] under this router's shard count.
    pub fn split_batch(&self, batch: &WorkerBatch, answers: &AnswerMatrix) -> Vec<WorkerBatch> {
        batch.shard_split(answers, self.num_shards)
    }
}

/// The router's assignment materialized over a fixed item universe: shard
/// and within-shard position per item, and the owned item list per shard.
///
/// A fleet builds one index at construction and shares it (`Arc`) with
/// every published read view, so the read path can slice per-shard slabs
/// and assemble item-ranged replies without re-hashing items.
#[derive(Debug, PartialEq, Eq)]
pub struct ShardIndex {
    router: ShardRouter,
    shard_of_item: Vec<u32>,
    pos_in_shard: Vec<u32>,
    items_of_shard: Vec<Vec<u32>>,
}

impl ShardIndex {
    /// Materializes `router`'s assignment over `0..num_items`.
    ///
    /// # Panics
    /// Panics if `num_items` or the shard count exceeds `u32::MAX` (the
    /// index stores positions as `u32`).
    pub fn new(router: ShardRouter, num_items: usize) -> Self {
        assert!(num_items <= u32::MAX as usize, "item universe too large");
        assert!(router.num_shards() <= u32::MAX as usize, "too many shards");
        let mut shard_of_item = Vec::with_capacity(num_items);
        let mut pos_in_shard = Vec::with_capacity(num_items);
        let mut items_of_shard = vec![Vec::new(); router.num_shards()];
        for item in 0..num_items {
            let s = router.route(item);
            shard_of_item.push(s as u32);
            pos_in_shard.push(items_of_shard[s].len() as u32);
            items_of_shard[s].push(item as u32);
        }
        Self {
            router,
            shard_of_item,
            pos_in_shard,
            items_of_shard,
        }
    }

    /// The router this index materializes.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.items_of_shard.len()
    }

    /// Size of the item universe.
    pub fn num_items(&self) -> usize {
        self.shard_of_item.len()
    }

    /// The shard owning `item`.
    ///
    /// # Panics
    /// Panics if `item` is outside the indexed universe.
    pub fn shard_of(&self, item: usize) -> usize {
        self.shard_of_item[item] as usize
    }

    /// `item`'s position within its owning shard's
    /// [`items_of`](Self::items_of) list.
    ///
    /// # Panics
    /// Panics if `item` is outside the indexed universe.
    pub fn pos_in_shard(&self, item: usize) -> usize {
        self.pos_in_shard[item] as usize
    }

    /// The items shard `s` owns, ascending.
    ///
    /// # Panics
    /// Panics if `s` is not a valid shard.
    pub fn items_of(&self, s: usize) -> &[u32] {
        &self.items_of_shard[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_data::labels::LabelSet;

    fn ls(labels: &[usize]) -> LabelSet {
        LabelSet::from_labels(4, labels.iter().copied())
    }

    #[test]
    fn split_answers_partitions_by_owner() {
        let mut m = AnswerMatrix::new(8, 3, 4);
        for i in 0..8 {
            m.insert(i, i % 3, ls(&[i % 4]));
        }
        let router = ShardRouter::new(3);
        let parts = router.split_answers(&m);
        assert_eq!(parts.len(), 3);
        let mut total = 0;
        for (s, part) in parts.iter().enumerate() {
            // Global shape is preserved.
            assert_eq!(part.num_items(), 8);
            assert_eq!(part.num_workers(), 3);
            assert_eq!(part.num_labels(), 4);
            assert!(part.check_consistency());
            for a in part.iter() {
                assert_eq!(router.route(a.item as usize), s);
                assert_eq!(m.get(a.item as usize, a.worker as usize), Some(&a.labels));
            }
            total += part.num_answers();
        }
        assert_eq!(total, m.num_answers(), "no answer lost or duplicated");
    }

    #[test]
    fn single_shard_split_is_the_whole_universe() {
        let mut m = AnswerMatrix::new(4, 2, 4);
        m.insert(0, 0, ls(&[1]));
        m.insert(3, 1, ls(&[2, 3]));
        let parts = ShardRouter::new(1).split_answers(&m);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_answers(), m.num_answers());
        assert_eq!(parts[0].get(3, 1), m.get(3, 1));
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        ShardRouter::new(0);
    }

    #[test]
    fn shard_index_matches_the_router_and_partitions_items() {
        for k in [1usize, 2, 3, 4] {
            let router = ShardRouter::new(k);
            let idx = ShardIndex::new(router, 17);
            assert_eq!(idx.num_shards(), k);
            assert_eq!(idx.num_items(), 17);
            let mut seen = 0usize;
            for s in 0..k {
                for (pos, &item) in idx.items_of(s).iter().enumerate() {
                    let item = item as usize;
                    assert_eq!(router.route(item), s);
                    assert_eq!(idx.shard_of(item), s);
                    assert_eq!(idx.pos_in_shard(item), pos);
                    seen += 1;
                }
                // Owned item lists ascend.
                assert!(idx.items_of(s).windows(2).all(|w| w[0] < w[1]));
            }
            assert_eq!(seen, 17, "items partition exactly across shards");
        }
    }
}
