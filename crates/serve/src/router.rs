//! Item → shard routing and the shard-local views it induces.
//!
//! The router is pure arithmetic over the canonical
//! [`cpa_data::stream::shard_of`] hash — no state, no configuration beyond
//! the shard count — so every component of the serving layer (the
//! [`crate::fleet::Fleet`], the determinism tests, external producers that
//! want to pre-partition traffic) computes the same assignment.
//!
//! Sharding partitions **items**: each shard owns a subset of the item
//! space and sees only the answers to its items, while the worker and label
//! dimensions stay global. Engines therefore keep the full population shape
//! (`num_items × num_workers × num_labels`), which keeps item/worker indices
//! stable across shards — merging predictions back into global item order is
//! a gather, not an index translation.

use cpa_data::answers::{AnswerMatrix, AnswerMatrixBuilder};
use cpa_data::stream::{shard_of, WorkerBatch};

/// Deterministic item → shard assignment for a fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    num_shards: usize,
}

impl ShardRouter {
    /// A router over `num_shards` shards.
    ///
    /// # Panics
    /// Panics if `num_shards == 0`.
    pub fn new(num_shards: usize) -> Self {
        assert!(num_shards > 0, "shard count must be positive");
        Self { num_shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The shard owning `item` (the canonical [`shard_of`] assignment).
    pub fn route(&self, item: usize) -> usize {
        shard_of(item, self.num_shards)
    }

    /// Splits a full answer universe into per-shard universes: shard `s`
    /// receives exactly the answers to its items, at the *global* population
    /// shape (unowned items are simply empty rows).
    pub fn split_answers(&self, answers: &AnswerMatrix) -> Vec<AnswerMatrix> {
        let mut builders: Vec<AnswerMatrixBuilder> = (0..self.num_shards)
            .map(|_| {
                AnswerMatrixBuilder::new(
                    answers.num_items(),
                    answers.num_workers(),
                    answers.num_labels(),
                )
            })
            .collect();
        for a in answers.iter() {
            builders[self.route(a.item as usize)].insert(
                a.item as usize,
                a.worker as usize,
                a.labels,
            );
        }
        builders
            .into_iter()
            .map(AnswerMatrixBuilder::build)
            .collect()
    }

    /// Splits one arrival batch into per-shard batches — delegates to
    /// [`WorkerBatch::shard_split`] under this router's shard count.
    pub fn split_batch(&self, batch: &WorkerBatch, answers: &AnswerMatrix) -> Vec<WorkerBatch> {
        batch.shard_split(answers, self.num_shards)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_data::labels::LabelSet;

    fn ls(labels: &[usize]) -> LabelSet {
        LabelSet::from_labels(4, labels.iter().copied())
    }

    #[test]
    fn split_answers_partitions_by_owner() {
        let mut m = AnswerMatrix::new(8, 3, 4);
        for i in 0..8 {
            m.insert(i, i % 3, ls(&[i % 4]));
        }
        let router = ShardRouter::new(3);
        let parts = router.split_answers(&m);
        assert_eq!(parts.len(), 3);
        let mut total = 0;
        for (s, part) in parts.iter().enumerate() {
            // Global shape is preserved.
            assert_eq!(part.num_items(), 8);
            assert_eq!(part.num_workers(), 3);
            assert_eq!(part.num_labels(), 4);
            assert!(part.check_consistency());
            for a in part.iter() {
                assert_eq!(router.route(a.item as usize), s);
                assert_eq!(m.get(a.item as usize, a.worker as usize), Some(&a.labels));
            }
            total += part.num_answers();
        }
        assert_eq!(total, m.num_answers(), "no answer lost or duplicated");
    }

    #[test]
    fn single_shard_split_is_the_whole_universe() {
        let mut m = AnswerMatrix::new(4, 2, 4);
        m.insert(0, 0, ls(&[1]));
        m.insert(3, 1, ls(&[2, 3]));
        let parts = ShardRouter::new(1).split_answers(&m);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].num_answers(), m.num_answers());
        assert_eq!(parts[0].get(3, 1), m.get(3, 1));
    }

    #[test]
    #[should_panic(expected = "shard count must be positive")]
    fn zero_shards_rejected() {
        ShardRouter::new(0);
    }
}
