//! Leader/follower replication: a [`Follower`] fleet built from shipped
//! ops.
//!
//! The fleet's determinism story (PR 5/7: `Fleet::apply` is deterministic,
//! so a recorded op-log replays to a byte-identical snapshot) is promoted
//! here from test artifact to architecture. A follower owns its **own**
//! [`Fleet`] and applies the leader's accepted mutations in leader order,
//! each through the same `Fleet::apply` interpreter the leader used — so at
//! every epoch the follower reaches, its state (predictions, estimates,
//! manifest) is **bit-identical** to the leader's state at that epoch, and
//! it serves `Predict`/`Estimate`/ranged reads from its own epoch-published
//! views at a bounded, observable epoch lag ([`Follower::lag`]).
//!
//! Where the ops come from is abstracted behind [`OpFeed`] so the runtime
//! is transport-agnostic (`cpa-serve` sits *below* `cpa-transport` in the
//! crate graph):
//!
//! - **live stream** — `cpa-transport`'s subscription client
//!   (`FleetOp::SubscribeOps`) implements `OpFeed`: the leader's server
//!   pushes every accepted mutation as an epoch-tagged
//!   [`FleetReply::OpApplied`](crate::FleetReply)
//!   frame the moment its view is published, and each frame's epoch tag is
//!   verified against the epoch the follower's own apply produced;
//! - **live on-disk op-log** — [`OpLogTailFeed`] tails a growing JSONL
//!   op-log through the tolerant `cpa_data::io::oplog_tail_jsonl` reader
//!   (a partially-appended final record is a clean resumable boundary, not
//!   corruption), yielding untagged ops whose epochs the follower derives
//!   by applying them.
//!
//! **Failover** is replay-to-head then promote: when the feed ends (the
//! leader closed the stream, or the log went quiet past the tail feed's
//! idle timeout), [`Follower::sync`] has already applied everything the
//! leader acked; [`Follower::promote`] hands back the fleet, which then
//! accepts mutations as the new leader. Because the follower replayed the
//! leader's exact mutation sequence, the promoted fleet's manifest is
//! byte-for-byte the leader's final manifest (locked by
//! `tests/replication.rs`).
//!
//! A `Shutdown` in the shipped stream is the **leader's** shutdown, not the
//! follower's: it is skipped like any non-mutating op (the
//! [`StopAt::End`](crate::fleet::StopAt::End) discipline), so a follower
//! tails cleanly past the marker a local replay would stop at.

use crate::fleet::Fleet;
use crate::protocol::{FleetOp, FleetReply};
use crate::view::ViewHandle;
use std::time::{Duration, Instant};

/// One op delivered to a follower: the mutation plus, when the feed knows
/// it (subscription frames do, raw log tails don't), the epoch the leader's
/// apply produced — verified against the follower's own apply.
#[derive(Debug, Clone)]
pub struct ShippedOp {
    /// The epoch this op created on the leader, if the feed carries tags.
    pub epoch: Option<u64>,
    /// The op itself, exactly as the leader applied it.
    pub op: FleetOp,
}

impl ShippedOp {
    /// An epoch-tagged op (the subscription-frame shape).
    pub fn tagged(epoch: u64, op: FleetOp) -> Self {
        Self {
            epoch: Some(epoch),
            op,
        }
    }

    /// An untagged op (the raw-op-log shape; the follower derives the
    /// epoch by applying).
    pub fn untagged(op: FleetOp) -> Self {
        Self { epoch: None, op }
    }
}

/// A source of shipped ops a follower tails.
///
/// `next_op` blocks until the next op is available, and returns `Ok(None)`
/// when the stream has ended — the leader closed the subscription, or a
/// log tail went idle past its deadline. After `Ok(None)` the follower is
/// at the stream's head and ready to [`Follower::promote`].
pub trait OpFeed {
    /// The next shipped op, `Ok(None)` at end of stream.
    ///
    /// # Errors
    /// [`ReplicaError::Feed`] on any transport/parse failure underneath.
    fn next_op(&mut self) -> Result<Option<ShippedOp>, ReplicaError>;
}

/// What [`Follower::apply_shipped`] did with one shipped op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applied {
    /// A mutation was applied; the follower now serves this epoch.
    Mutation(u64),
    /// A non-mutating op (a read in a raw log, or the leader's `Shutdown`)
    /// was skipped; the follower's epoch is unchanged.
    Skipped,
}

/// Why replication stopped.
#[derive(Debug)]
pub enum ReplicaError {
    /// The feed underneath failed (socket death, log corruption, …).
    Feed(String),
    /// The leader rejected-and-shipped nothing, but the follower rejected:
    /// the shipped op did not apply cleanly — divergent state or a
    /// corrupted stream.
    Rejected {
        /// The op's stable name.
        op: &'static str,
        /// The follower fleet's rejection message.
        message: String,
    },
    /// The epoch the follower's apply produced differs from the epoch tag
    /// the leader pushed — a gap or reorder in the shipped stream.
    EpochMismatch {
        /// The epoch tag on the shipped frame.
        pushed: u64,
        /// The epoch the follower's apply actually produced.
        applied: u64,
        /// The op's stable name.
        op: &'static str,
    },
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Feed(message) => write!(f, "op feed failed: {message}"),
            ReplicaError::Rejected { op, message } => {
                write!(f, "follower rejected shipped {op} op: {message}")
            }
            ReplicaError::EpochMismatch {
                pushed,
                applied,
                op,
            } => write!(
                f,
                "shipped {op} op tagged epoch {pushed} but applying produced \
                 epoch {applied} — gap or reorder in the shipped stream"
            ),
        }
    }
}

impl std::error::Error for ReplicaError {}

/// A replica fleet built by applying a leader's shipped mutations in order.
///
/// The follower serves reads from its own fleet the whole time — in
/// process via [`Follower::fleet`] (`predict_all`, `estimate_all`, the
/// ranged forms), or through its epoch-published [`Follower::view_handle`]
/// exactly like a leader's readers — always at some epoch ≤ the leader's
/// head, with the gap observable as [`Follower::lag`].
#[derive(Debug)]
pub struct Follower {
    fleet: Fleet,
    /// Highest leader epoch observed (subscription ack + frame tags).
    head: u64,
}

impl Follower {
    /// Wraps a fleet (normally fresh, of the leader's construction; or
    /// pre-seeded by replaying a mutation prefix, for mid-stream resume).
    pub fn new(fleet: Fleet) -> Self {
        let head = fleet.epoch();
        Self { fleet, head }
    }

    /// The replica fleet (reads go here; mutations wait for
    /// [`Follower::promote`]).
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The epoch the follower currently serves.
    pub fn epoch(&self) -> u64 {
        self.fleet.epoch()
    }

    /// The highest leader epoch observed so far (from the subscription ack
    /// and every frame's tag) — the known head of the stream.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// The observable replication lag, in epochs: how far the known leader
    /// head is ahead of what this follower serves. Zero once caught up.
    pub fn lag(&self) -> u64 {
        self.head.saturating_sub(self.fleet.epoch())
    }

    /// Records a leader-head observation (e.g. the epoch on the
    /// `Subscribed` ack, or a head the operator learned out of band).
    pub fn observe_head(&mut self, epoch: u64) {
        self.head = self.head.max(epoch);
    }

    /// A handle onto the replica's epoch-published read view — the same
    /// read path a leader's transport handlers use.
    pub fn view_handle(&self) -> ViewHandle {
        self.fleet.view_handle()
    }

    /// Applies one shipped op. Non-mutations (reads recorded in a raw log,
    /// the **leader's** `Shutdown`) are skipped; mutations go through
    /// [`Fleet::apply`] and, when the frame carries an epoch tag, the
    /// resulting epoch is verified against it.
    ///
    /// # Errors
    /// [`ReplicaError::Rejected`] if the replica fleet rejects the op
    /// (divergent state), [`ReplicaError::EpochMismatch`] on a tag/apply
    /// disagreement (gap or reorder in the stream).
    pub fn apply_shipped(&mut self, shipped: ShippedOp) -> Result<Applied, ReplicaError> {
        let ShippedOp { epoch, op } = shipped;
        if let Some(pushed) = epoch {
            self.observe_head(pushed);
        }
        if !op.is_mutation() {
            return Ok(Applied::Skipped);
        }
        let name = op.name();
        match self.fleet.apply(op) {
            FleetReply::Error { message } => Err(ReplicaError::Rejected { op: name, message }),
            _ => {
                let applied = self.fleet.epoch();
                if let Some(pushed) = epoch {
                    if pushed != applied {
                        return Err(ReplicaError::EpochMismatch {
                            pushed,
                            applied,
                            op: name,
                        });
                    }
                }
                // Post-restore lineages can jump the epoch backwards; the
                // head tracks the lineage the fleet is actually on.
                self.head = self.head.max(applied);
                Ok(Applied::Mutation(applied))
            }
        }
    }

    /// Drains `feed` to the end of stream, applying every shipped mutation
    /// — replay-to-head. Returns the epoch the follower finished at.
    ///
    /// # Errors
    /// Any [`ReplicaError`] from the feed or from applying.
    pub fn sync(&mut self, feed: &mut dyn OpFeed) -> Result<u64, ReplicaError> {
        while let Some(shipped) = feed.next_op()? {
            self.apply_shipped(shipped)?;
        }
        Ok(self.fleet.epoch())
    }

    /// Failover: hands the replica fleet back as a plain [`Fleet`], ready
    /// to accept mutations as the new leader. Call after
    /// [`Follower::sync`] has drained the stream to its head; the promoted
    /// fleet's snapshot is then byte-for-byte the old leader's final
    /// manifest.
    pub fn promote(self) -> Fleet {
        self.fleet
    }
}

/// An [`OpFeed`] tailing a live, append-in-progress JSONL op-log on disk
/// through the tolerant `cpa_data::io::oplog_tail_jsonl` reader: a
/// partially-appended final record is a clean resumable boundary (the next
/// poll re-reads it once its newline lands), never a parse error.
///
/// The feed re-reads the file each poll and yields the records beyond what
/// it already delivered, untagged (the follower derives epochs by
/// applying). The stream "ends" — `next_op` returns `Ok(None)` — once the
/// log has grown no new complete record for `idle_timeout`: the writer is
/// presumed dead, which is the failover trigger for log-shipping setups.
#[derive(Debug)]
pub struct OpLogTailFeed {
    path: std::path::PathBuf,
    delivered: usize,
    poll_interval: Duration,
    idle_timeout: Duration,
}

impl OpLogTailFeed {
    /// Tails `path`, polling every `poll_interval`, declaring end of
    /// stream after `idle_timeout` without a new complete record.
    pub fn new(
        path: impl Into<std::path::PathBuf>,
        poll_interval: Duration,
        idle_timeout: Duration,
    ) -> Self {
        Self {
            path: path.into(),
            delivered: 0,
            poll_interval,
            idle_timeout,
        }
    }

    /// Records delivered so far (monotone; survives partial final records).
    pub fn delivered(&self) -> usize {
        self.delivered
    }
}

impl OpFeed for OpLogTailFeed {
    fn next_op(&mut self) -> Result<Option<ShippedOp>, ReplicaError> {
        let deadline = Instant::now() + self.idle_timeout;
        loop {
            // A not-yet-created file is a writer that has not started; an
            // empty or header-only file is a log with no records yet. Both
            // are idle states, not errors, until the deadline.
            let text = std::fs::read_to_string(&self.path).unwrap_or_default();
            let tail = cpa_data::io::oplog_tail_jsonl::<FleetOp>(&text)
                .map_err(|e| ReplicaError::Feed(format!("{}: {e}", self.path.display())))?;
            if let Some(op) = tail.ops.into_iter().nth(self.delivered) {
                self.delivered += 1;
                return Ok(Some(ShippedOp::untagged(op)));
            }
            if Instant::now() >= deadline {
                return Ok(None);
            }
            std::thread::sleep(self.poll_interval);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_core::engine::DynEngine;
    use cpa_core::{BatchCpa, CpaConfig};

    fn tiny_fleet() -> Fleet {
        let (i, u, c) = (4, 3, 2);
        Fleet::new(2, 1, i, u, c, |_| {
            Box::new(BatchCpa::new(
                CpaConfig::default().with_truncation(3, 4),
                i,
                u,
                c,
            )) as DynEngine
        })
    }

    fn ingest(worker: usize, item: usize) -> FleetOp {
        FleetOp::Ingest {
            workers: vec![worker],
            answers: vec![(item, worker, vec![1])],
        }
    }

    #[test]
    fn follower_applies_tagged_mutations_and_skips_leader_shutdown() {
        let mut follower = Follower::new(tiny_fleet());
        assert_eq!(follower.lag(), 0);
        follower.observe_head(3);
        assert_eq!(follower.lag(), 3);
        assert_eq!(
            follower
                .apply_shipped(ShippedOp::tagged(1, ingest(0, 0)))
                .unwrap(),
            Applied::Mutation(1)
        );
        // The leader's shutdown marker is not the follower's.
        assert_eq!(
            follower
                .apply_shipped(ShippedOp::untagged(FleetOp::Shutdown))
                .unwrap(),
            Applied::Skipped
        );
        assert_eq!(
            follower
                .apply_shipped(ShippedOp::tagged(2, FleetOp::Refit))
                .unwrap(),
            Applied::Mutation(2)
        );
        assert_eq!(follower.epoch(), 2);
        assert_eq!(follower.head(), 3);
        assert_eq!(follower.lag(), 1);
    }

    #[test]
    fn epoch_gaps_and_rejections_are_named_errors() {
        let mut follower = Follower::new(tiny_fleet());
        // A frame tagged 2 against an epoch-0 follower is a gap.
        let err = follower
            .apply_shipped(ShippedOp::tagged(2, ingest(0, 0)))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::EpochMismatch {
                    pushed: 2,
                    applied: 1,
                    ..
                }
            ),
            "{err}"
        );
        // Re-shipping an already-arrived worker violates the arrival
        // contract on the replica: a named rejection, not a panic.
        let err = follower
            .apply_shipped(ShippedOp::tagged(2, ingest(0, 1)))
            .unwrap_err();
        assert!(
            matches!(err, ReplicaError::Rejected { op: "Ingest", .. }),
            "{err}"
        );
    }

    #[test]
    fn promote_hands_back_a_mutable_fleet_at_head() {
        let mut follower = Follower::new(tiny_fleet());
        follower
            .apply_shipped(ShippedOp::tagged(1, ingest(1, 2)))
            .unwrap();
        let mut fleet = follower.promote();
        assert_eq!(fleet.epoch(), 1);
        // The promoted fleet accepts mutations — it is the new leader.
        assert!(matches!(
            fleet.apply(FleetOp::Refit),
            FleetReply::Refitted { epoch: 2 }
        ));
    }
}
