//! Epoch-published immutable read views: the fleet's read path.
//!
//! Every accepted fleet mutation (`Ingest` / `Refit` / `Restore`) bumps the
//! fleet's **epoch** — a monotonically increasing count of accepted
//! mutations — and publishes a fresh [`ReadView`] for it by atomically
//! swapping the `Arc` inside the fleet's [`ViewHandle`]. A view is an
//! immutable token of "the fleet as of epoch E":
//!
//! - readers (transport connection handlers, in-process callers) grab the
//!   current view with [`ViewHandle::current`] — one `Arc` clone, no lock
//!   held afterwards — and answer `Predict`/`Estimate` (full or
//!   item-ranged) from it without touching the fleet or its driver thread;
//! - the view's payload cells are **lazily filled, once per epoch**:
//!   publication after a mutation costs one small allocation, and merges
//!   run only when the epoch is actually read. The first read of an epoch
//!   pays the work; every later read of the same epoch is a cache hit.
//!
//! # Incremental publication (dirty shards)
//!
//! Cells are held **per shard**: shard `s`'s `predict_all` / `estimate`
//! slab lives in its own `Arc`, alongside per-item pre-encoded reply rows
//! per wire slot. When a mutation dirties only some shards (an `Ingest`
//! whose batch routed to 1 of K shards dirties exactly that shard;
//! `Refit` / `Restore` dirty all), `ViewHandle::publish` **carries the
//! clean shards' filled `Arc` cells forward unchanged** into the new
//! epoch's view — same allocation, zero recompute, zero copy (the carried
//! `Arc`s are pointer-identical across epochs). Only the dirty shards'
//! slabs are recomputed on the new epoch's first read, so that read costs
//! O(items/K) after a single-shard ingest instead of O(items).
//!
//! The *merged* all-items cells (and their whole-reply encodings) are
//! never carried: any accepted mutation invalidates at least one shard,
//! and the merge is a gather over the per-shard slabs — cheap once the
//! slabs are warm.
//!
//! # Consistency
//!
//! A view can never tear: all of its cells are derived from the fleet state
//! at one epoch (the fleet fills them while it is at that epoch, and a
//! mutation publishes a *new* view rather than touching the old one).
//! Carrying a clean shard's cell forward preserves that: the shard's
//! engine was untouched by the mutation, so recomputing its slab at the
//! new epoch would reproduce the carried bytes bit for bit (locked by
//! `tests/view_incremental.rs`). Replies built from a view carry its epoch
//! tag, and replaying the recorded mutation prefix up to epoch E on a
//! fresh fleet of the same construction reproduces exactly the
//! predictions a client read at E (`Fleet::replay_to_epoch`, locked by
//! `tests/read_view_stress.rs`).
//!
//! Epoch tags are comparable within one mutation lineage: a `Restore` op
//! adopts the manifest's recorded epoch (so replaying a log that contains
//! the restore reproduces the same tags), which may jump the counter
//! backwards — clients caching by epoch across a restore must treat the
//! restore as a new lineage.

use crate::protocol::FleetOp;
use crate::router::ShardIndex;
use cpa_core::truth::TruthEstimate;
use cpa_data::labels::LabelSet;
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of wire-encoding slots each read reply is cached under — one per
/// wire codec (`cpa-transport` maps its JSON codec to slot 0 and the binary
/// codec to slot 1). `cpa-serve` itself never encodes; it only provides the
/// per-epoch cells.
pub const WIRE_SLOTS: usize = 2;

/// Which read a [`ReadView`] cell answers.
///
/// Serializes as its variant name (`"Predictions"` / `"Estimate"`) so it can
/// ride inside wire ops like `FleetOp::SubscribeReads`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadKind {
    /// `FleetOp::Predict` / `PredictItems` — consensus label sets.
    Predictions,
    /// `FleetOp::Estimate` / `EstimateItems` — soft-truth estimate.
    Estimate,
}

impl ReadKind {
    /// Classifies an op as a view-servable **all-items** read, or `None`
    /// for everything else (mutations, the item-ranged reads — which carry
    /// a payload and are classified by [`ReadKind::of_ranged`] —
    /// `Snapshot`, and `Shutdown`).
    pub fn of(op: &FleetOp) -> Option<ReadKind> {
        match op {
            FleetOp::Predict => Some(ReadKind::Predictions),
            FleetOp::Estimate => Some(ReadKind::Estimate),
            _ => None,
        }
    }

    /// Classifies an op as a view-servable **item-ranged** read, returning
    /// the kind and the requested items.
    pub fn of_ranged(op: &FleetOp) -> Option<(ReadKind, &[usize])> {
        match op {
            FleetOp::PredictItems { items } => Some((ReadKind::Predictions, items)),
            FleetOp::EstimateItems { items } => Some((ReadKind::Estimate, items)),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            ReadKind::Predictions => 0,
            ReadKind::Estimate => 1,
        }
    }
}

/// A borrowed, epoch-tagged read reply: serializes **byte-identically** to
/// the matching owned [`FleetReply`](crate::protocol::FleetReply) variant while holding the view's
/// payload `Arc` instead of a deep clone — the encode-from-a-borrow path
/// transport handlers use to fill a view's encoded-reply cell.
#[derive(Debug)]
pub enum ReplyRef {
    /// Serializes as `FleetReply::Predictions`.
    Predictions {
        /// The view's merged predictions cell.
        predictions: Arc<Vec<LabelSet>>,
        /// The view's epoch.
        epoch: u64,
    },
    /// Serializes as `FleetReply::Estimated`.
    Estimated {
        /// The view's merged estimate cell.
        estimate: Arc<TruthEstimate>,
        /// The view's epoch.
        epoch: u64,
    },
}

impl Serialize for ReplyRef {
    // Mirrors the derive's externally-tagged enum encoding of the owned
    // `FleetReply` variants, field for field in declaration order.
    fn serialize(&self) -> serde::Value {
        let (tag, fields) = match self {
            ReplyRef::Predictions { predictions, epoch } => (
                "Predictions",
                vec![
                    ("predictions".to_string(), (**predictions).serialize()),
                    ("epoch".to_string(), epoch.serialize()),
                ],
            ),
            ReplyRef::Estimated { estimate, epoch } => (
                "Estimated",
                vec![
                    ("estimate".to_string(), (**estimate).serialize()),
                    ("epoch".to_string(), epoch.serialize()),
                ],
            ),
        };
        serde::Value::Object(vec![(tag.to_string(), serde::Value::Object(fields))])
    }
}

/// One shard's lazily-filled cells: its raw `predict_all` / `estimate`
/// slabs (global population shape — unowned rows are junk and never read)
/// and the per-item pre-encoded reply rows per [`ReadKind`] × wire slot,
/// in the shard's owned-item order ([`ShardIndex::items_of`]).
#[derive(Debug, Default)]
struct ShardCells {
    predictions: OnceLock<Arc<Vec<LabelSet>>>,
    estimate: OnceLock<Arc<TruthEstimate>>,
    rows: [OnceLock<Arc<Vec<Vec<u8>>>>; 2 * WIRE_SLOTS],
}

impl ShardCells {
    /// A copy carrying every *filled* cell forward by `Arc` clone — the
    /// clean-shard publication step. Unfilled cells stay lazily fillable
    /// at the new epoch.
    fn carry(&self) -> ShardCells {
        let next = ShardCells::default();
        if let Some(p) = self.predictions.get() {
            let _ = next.predictions.set(p.clone());
        }
        if let Some(e) = self.estimate.get() {
            let _ = next.estimate.set(e.clone());
        }
        for (cell, prev) in next.rows.iter().zip(&self.rows) {
            if let Some(rows) = prev.get() {
                let _ = cell.set(rows.clone());
            }
        }
        next
    }
}

/// One epoch's immutable read state: the epoch number, the shared
/// [`ShardIndex`], per-shard cells (slabs + pre-encoded reply rows), and
/// merged all-items cells (values + whole-reply encodings per wire slot).
///
/// Views are only ever constructed (and their value cells only ever filled)
/// by the owning `Fleet` or a transport handler encoding from them; readers
/// observe them through [`ViewHandle::current`].
#[derive(Debug)]
pub struct ReadView {
    epoch: u64,
    index: Arc<ShardIndex>,
    shards: Vec<ShardCells>,
    /// The shards the mutation that published this view dirtied, ascending —
    /// exactly the slabs a reader of the previous epoch must refresh. A
    /// fresh or restored view dirties every shard.
    dirty: Vec<usize>,
    predictions: OnceLock<Arc<Vec<LabelSet>>>,
    estimate: OnceLock<Arc<TruthEstimate>>,
    encoded: [OnceLock<Arc<Vec<u8>>>; 2 * WIRE_SLOTS],
}

impl ReadView {
    pub(crate) fn new(epoch: u64, index: Arc<ShardIndex>) -> Self {
        let shards = (0..index.num_shards())
            .map(|_| ShardCells::default())
            .collect();
        Self {
            epoch,
            dirty: (0..index.num_shards()).collect(),
            index,
            shards,
            predictions: OnceLock::new(),
            estimate: OnceLock::new(),
            encoded: Default::default(),
        }
    }

    /// The epoch-`E+1` view after a mutation that dirtied `dirty`: clean
    /// shards' filled cells are carried forward by `Arc` clone
    /// (pointer-identical, zero recompute); dirty shards' cells — and all
    /// merged cells — start empty.
    pub(crate) fn carried(epoch: u64, prev: &ReadView, dirty: &[bool]) -> Self {
        assert_eq!(dirty.len(), prev.shards.len(), "dirty set vs shard count");
        let shards = prev
            .shards
            .iter()
            .zip(dirty)
            .map(|(cells, &is_dirty)| {
                if is_dirty {
                    ShardCells::default()
                } else {
                    cells.carry()
                }
            })
            .collect();
        Self {
            epoch,
            index: prev.index.clone(),
            shards,
            dirty: dirty
                .iter()
                .enumerate()
                .filter_map(|(s, &is_dirty)| is_dirty.then_some(s))
                .collect(),
            predictions: OnceLock::new(),
            estimate: OnceLock::new(),
            encoded: Default::default(),
        }
    }

    /// The epoch this view was published at: the number of accepted
    /// mutations the fleet had applied.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The item → shard index this view's fleet routes by.
    pub fn index(&self) -> &Arc<ShardIndex> {
        &self.index
    }

    /// The shards the mutation that published this view dirtied, ascending
    /// — the delta set relative to the previous epoch. A fresh or restored
    /// view reports every shard dirty (nothing carried).
    pub fn dirty_shards(&self) -> &[usize] {
        &self.dirty
    }

    /// The merged predictions, if this epoch's merge has run.
    pub fn predictions(&self) -> Option<Arc<Vec<LabelSet>>> {
        self.predictions.get().cloned()
    }

    /// The merged soft-truth estimate, if this epoch's merge has run.
    pub fn estimate(&self) -> Option<Arc<TruthEstimate>> {
        self.estimate.get().cloned()
    }

    /// Shard `s`'s raw `predict_all` slab, if filled this epoch (possibly
    /// carried from an earlier epoch the shard was clean across).
    pub fn shard_predictions(&self, s: usize) -> Option<Arc<Vec<LabelSet>>> {
        self.shards[s].predictions.get().cloned()
    }

    /// Shard `s`'s raw `estimate` slab, if filled this epoch.
    pub fn shard_estimate(&self, s: usize) -> Option<Arc<TruthEstimate>> {
        self.shards[s].estimate.get().cloned()
    }

    /// Fills (or reads) shard `s`'s predictions slab — called by the
    /// fleet, which owns the engine the slab is computed from.
    pub(crate) fn shard_predictions_or_init(
        &self,
        s: usize,
        init: impl FnOnce() -> Vec<LabelSet>,
    ) -> Arc<Vec<LabelSet>> {
        self.shards[s]
            .predictions
            .get_or_init(|| Arc::new(init()))
            .clone()
    }

    /// Fills (or reads) shard `s`'s estimate slab — called by the fleet.
    pub(crate) fn shard_estimate_or_init(
        &self,
        s: usize,
        init: impl FnOnce() -> TruthEstimate,
    ) -> Arc<TruthEstimate> {
        self.shards[s]
            .estimate
            .get_or_init(|| Arc::new(init()))
            .clone()
    }

    /// Fills (or reads) the merged predictions cell — called by the fleet,
    /// which owns the engines the merge reads.
    pub(crate) fn predictions_or_init(
        &self,
        init: impl FnOnce() -> Vec<LabelSet>,
    ) -> Arc<Vec<LabelSet>> {
        self.predictions.get_or_init(|| Arc::new(init())).clone()
    }

    /// Fills (or reads) the merged estimate cell — called by the fleet.
    pub(crate) fn estimate_or_init(
        &self,
        init: impl FnOnce() -> TruthEstimate,
    ) -> Arc<TruthEstimate> {
        self.estimate.get_or_init(|| Arc::new(init())).clone()
    }

    /// Builds the borrowed, epoch-tagged reply for `kind` from the filled
    /// merged cells — it serializes byte-identically to the owned
    /// [`FleetReply`](crate::protocol::FleetReply) without cloning the payload — or `None` if this
    /// epoch's merge has not run yet (the reader should fall back to the
    /// fleet driver, whose `apply` fills the cell).
    pub fn reply_ref(&self, kind: ReadKind) -> Option<ReplyRef> {
        match kind {
            ReadKind::Predictions => self.predictions().map(|predictions| ReplyRef::Predictions {
                predictions,
                epoch: self.epoch,
            }),
            ReadKind::Estimate => self.estimate().map(|estimate| ReplyRef::Estimated {
                estimate,
                epoch: self.epoch,
            }),
        }
    }

    /// The cached encoded reply bytes for `kind` under wire `slot`, if some
    /// reader already encoded this epoch's reply under that codec.
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`.
    pub fn encoded(&self, kind: ReadKind, slot: usize) -> Option<Arc<Vec<u8>>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        self.encoded[kind.index() * WIRE_SLOTS + slot]
            .get()
            .cloned()
    }

    /// Publishes encoded reply bytes for `kind` under wire `slot` and
    /// returns the cell's content (the given bytes, or whatever another
    /// reader raced in first — both encode the same reply value, so the
    /// bytes are identical either way).
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`.
    pub fn fill_encoded(&self, kind: ReadKind, slot: usize, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        self.encoded[kind.index() * WIRE_SLOTS + slot]
            .get_or_init(|| Arc::new(bytes))
            .clone()
    }

    /// Shard `s`'s pre-encoded per-item reply rows for `kind` under wire
    /// `slot` — one encoded value per owned item, in
    /// [`ShardIndex::items_of`] order — if some reader already encoded
    /// them this epoch.
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`.
    pub fn rows(&self, kind: ReadKind, slot: usize, s: usize) -> Option<Arc<Vec<Vec<u8>>>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        self.shards[s].rows[kind.index() * WIRE_SLOTS + slot]
            .get()
            .cloned()
    }

    /// Publishes shard `s`'s pre-encoded per-item reply rows for `kind`
    /// under wire `slot` (one per owned item, in
    /// [`ShardIndex::items_of`] order) and returns the cell's content —
    /// the fill-once discipline of [`ReadView::fill_encoded`], per shard.
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`, or if the row count does not match
    /// the shard's owned-item count.
    pub fn fill_rows(
        &self,
        kind: ReadKind,
        slot: usize,
        s: usize,
        rows: Vec<Vec<u8>>,
    ) -> Arc<Vec<Vec<u8>>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        assert_eq!(
            rows.len(),
            self.index.items_of(s).len(),
            "one encoded row per owned item"
        );
        self.shards[s].rows[kind.index() * WIRE_SLOTS + slot]
            .get_or_init(|| Arc::new(rows))
            .clone()
    }
}

/// A cloneable handle onto a fleet's current [`ReadView`].
///
/// The fleet swaps the inner `Arc` on every accepted mutation; readers call
/// [`ViewHandle::current`] per request and hold only the returned `Arc`
/// (never the lock), so reads proceed fully concurrently with each other
/// and with fleet mutations. Handles stay valid across `Restore` ops: the
/// fleet re-attaches the same handle to the restored state.
///
/// # Poison recovery
///
/// The slot deliberately ignores lock poisoning: the guarded value is a
/// single `Arc` that is only ever *replaced* (never mutated in place), so a
/// thread that panics while holding the lock still leaves a coherent view
/// behind — the one published before the panic. Treating poison as fatal
/// would turn one panicking publisher into a permanent all-reads-panic
/// cascade on every connection, which is exactly backwards for a serving
/// path (locked by `a_panicking_lock_holder_does_not_poison_reads`).
#[derive(Debug, Clone)]
pub struct ViewHandle {
    slot: Arc<RwLock<Arc<ReadView>>>,
}

impl ViewHandle {
    pub(crate) fn new(epoch: u64, index: Arc<ShardIndex>) -> Self {
        Self {
            slot: Arc::new(RwLock::new(Arc::new(ReadView::new(epoch, index)))),
        }
    }

    /// The currently published view (one `Arc` clone under a read lock).
    /// Never panics on a poisoned slot — see the type docs.
    pub fn current(&self) -> Arc<ReadView> {
        self.slot
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Swaps in the view for `epoch`, carrying forward the filled cells of
    /// every shard `dirty` marks clean — the publication step of every
    /// accepted mutation.
    pub(crate) fn publish(&self, epoch: u64, dirty: &[bool]) {
        let mut slot = self
            .slot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = Arc::new(ReadView::carried(epoch, &slot, dirty));
    }

    /// Swaps in a fresh, empty view for `epoch` over (possibly) a new
    /// index — the publication step of a `Restore`, which may change the
    /// shard count and invalidates everything.
    pub(crate) fn reset(&self, epoch: u64, index: Arc<ShardIndex>) {
        *self
            .slot
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner) =
            Arc::new(ReadView::new(epoch, index));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::FleetReply;
    use crate::router::ShardRouter;
    use cpa_data::labels::LabelSet;

    fn index(k: usize, items: usize) -> Arc<ShardIndex> {
        Arc::new(ShardIndex::new(ShardRouter::new(k), items))
    }

    #[test]
    fn read_kind_classifies_only_view_servable_reads() {
        assert_eq!(ReadKind::of(&FleetOp::Predict), Some(ReadKind::Predictions));
        assert_eq!(ReadKind::of(&FleetOp::Estimate), Some(ReadKind::Estimate));
        assert_eq!(
            ReadKind::of(&FleetOp::PredictItems { items: vec![0] }),
            None
        );
        assert_eq!(ReadKind::of(&FleetOp::Refit), None);
        assert_eq!(ReadKind::of(&FleetOp::Snapshot), None);
        assert_eq!(ReadKind::of(&FleetOp::Shutdown), None);
        match ReadKind::of_ranged(&FleetOp::PredictItems { items: vec![2, 2] }) {
            Some((ReadKind::Predictions, items)) => assert_eq!(items, &[2, 2]),
            other => panic!("unexpected classification {other:?}"),
        }
        match ReadKind::of_ranged(&FleetOp::EstimateItems { items: vec![] }) {
            Some((ReadKind::Estimate, items)) => assert!(items.is_empty()),
            other => panic!("unexpected classification {other:?}"),
        }
        assert!(ReadKind::of_ranged(&FleetOp::Predict).is_none());
    }

    #[test]
    fn cells_fill_once_and_reply_refs_serialize_like_owned_replies() {
        let view = ReadView::new(7, index(2, 3));
        assert!(view.reply_ref(ReadKind::Predictions).is_none());
        let first = view.predictions_or_init(|| vec![LabelSet::from_labels(3, vec![1]); 3]);
        // A second init closure never runs: the cell is fill-once.
        let again = view.predictions_or_init(|| unreachable!("cell already filled"));
        assert!(Arc::ptr_eq(&first, &again));
        let reply_ref = view.reply_ref(ReadKind::Predictions).expect("filled");
        let owned = FleetReply::Predictions {
            predictions: (*first).clone(),
            epoch: 7,
        };
        // The borrowed reply is byte-identical to the owned one under both
        // the JSON text encoding and the binary document encoding.
        assert_eq!(
            serde_json::to_string(&reply_ref).unwrap(),
            serde_json::to_string(&owned).unwrap()
        );
        assert_eq!(
            cpa_data::codec::to_bytes(&reply_ref),
            cpa_data::codec::to_bytes(&owned)
        );
    }

    #[test]
    fn estimate_reply_ref_matches_owned_encoding() {
        let view = ReadView::new(3, index(1, 2));
        let est = view.shard_estimate_or_init(0, || TruthEstimate {
            soft: vec![vec![(0, 0.5)], vec![(1, 0.25)]],
            expected_size: vec![1.0, 2.0],
            worker_weight: vec![0.5],
            community_reliability: vec![],
        });
        let merged = view.estimate_or_init(|| (*est).clone());
        let reply_ref = view.reply_ref(ReadKind::Estimate).expect("filled");
        let owned = FleetReply::Estimated {
            estimate: (*merged).clone(),
            epoch: 3,
        };
        assert_eq!(
            serde_json::to_string(&reply_ref).unwrap(),
            serde_json::to_string(&owned).unwrap()
        );
        assert_eq!(
            cpa_data::codec::to_bytes(&reply_ref),
            cpa_data::codec::to_bytes(&owned)
        );
    }

    #[test]
    fn encoded_cells_are_per_kind_and_slot() {
        let view = ReadView::new(1, index(1, 1));
        assert!(view.encoded(ReadKind::Predictions, 0).is_none());
        let bytes = view.fill_encoded(ReadKind::Predictions, 0, vec![1, 2, 3]);
        assert_eq!(*bytes, vec![1, 2, 3]);
        // Other slots and kinds are independent cells.
        assert!(view.encoded(ReadKind::Predictions, 1).is_none());
        assert!(view.encoded(ReadKind::Estimate, 0).is_none());
        // Racing fills keep the first value.
        let kept = view.fill_encoded(ReadKind::Predictions, 0, vec![9]);
        assert_eq!(*kept, vec![1, 2, 3]);
    }

    #[test]
    fn row_cells_are_per_shard_kind_and_slot() {
        let idx = index(2, 4);
        let owned = idx.items_of(0).len();
        let view = ReadView::new(2, idx);
        assert!(view.rows(ReadKind::Predictions, 0, 0).is_none());
        let rows = view.fill_rows(ReadKind::Predictions, 0, 0, vec![vec![7]; owned]);
        assert_eq!(rows.len(), owned);
        assert!(view.rows(ReadKind::Predictions, 1, 0).is_none());
        assert!(view.rows(ReadKind::Predictions, 0, 1).is_none());
        assert!(view.rows(ReadKind::Estimate, 0, 0).is_none());
        // Racing fills keep the first value.
        let kept = view.fill_rows(ReadKind::Predictions, 0, 0, vec![vec![9]; owned]);
        assert!(Arc::ptr_eq(&rows, &kept));
    }

    #[test]
    fn publish_carries_clean_shard_cells_and_drops_dirty_and_merged_ones() {
        let handle = ViewHandle::new(0, index(2, 5));
        let before = handle.current();
        let clean = before.shard_predictions_or_init(0, || vec![LabelSet::empty(2); 5]);
        let stale = before.shard_predictions_or_init(1, || vec![LabelSet::empty(2); 5]);
        before.predictions_or_init(|| vec![LabelSet::empty(2); 5]);
        before.fill_encoded(ReadKind::Predictions, 0, vec![1]);
        before.fill_rows(
            ReadKind::Predictions,
            0,
            0,
            vec![vec![1]; before.index().items_of(0).len()],
        );

        handle.publish(1, &[false, true]);
        let after = handle.current();
        assert_eq!(after.epoch(), 1);
        // The view remembers its own delta set; a fresh view dirties all.
        assert_eq!(after.dirty_shards(), &[1]);
        assert_eq!(before.dirty_shards(), &[0, 1]);
        // Clean shard 0: slab and rows carried, pointer-identical.
        let carried = after.shard_predictions(0).expect("carried forward");
        assert!(Arc::ptr_eq(&clean, &carried));
        assert!(after.rows(ReadKind::Predictions, 0, 0).is_some());
        // Dirty shard 1: dropped.
        assert!(after.shard_predictions(1).is_none());
        drop(stale);
        // Merged cells never carry across a mutation.
        assert!(after.predictions().is_none());
        assert!(after.encoded(ReadKind::Predictions, 0).is_none());
        // The old view is untouched by the swap — readers that grabbed it
        // keep a consistent epoch-0 token.
        assert_eq!(before.epoch(), 0);
        assert!(before.predictions().is_some());

        // Reset (the Restore publication) drops everything, clean or not.
        handle.reset(9, index(2, 5));
        let fresh = handle.current();
        assert_eq!(fresh.epoch(), 9);
        assert!(fresh.shard_predictions(0).is_none());
        assert_eq!(fresh.dirty_shards(), &[0, 1]);
    }

    #[test]
    fn a_panicking_lock_holder_does_not_poison_reads() {
        let handle = ViewHandle::new(3, index(2, 5));
        // Poison the slot the way a handler panic under the lock would: a
        // thread dies while holding the write guard.
        let holder = handle.clone();
        std::thread::spawn(move || {
            let _guard = holder.slot.write().unwrap();
            panic!("handler panicked while publishing");
        })
        .join()
        .unwrap_err();
        assert!(handle.slot.is_poisoned(), "the panic must poison the lock");
        // Reads keep serving the last published (coherent) view, and later
        // publications keep working — no permanent panic cascade.
        assert_eq!(handle.current().epoch(), 3);
        handle.publish(4, &[true, true]);
        assert_eq!(handle.current().epoch(), 4);
        handle.reset(1, index(1, 5));
        assert_eq!(handle.current().epoch(), 1);
    }
}
