//! Epoch-published immutable read views: the fleet's read path.
//!
//! Every accepted fleet mutation (`Ingest` / `Refit` / `Restore`) bumps the
//! fleet's **epoch** — a monotonically increasing count of accepted
//! mutations — and publishes a fresh [`ReadView`] for it by atomically
//! swapping the `Arc` inside the fleet's [`ViewHandle`]. A view is an
//! immutable token of "the fleet as of epoch E":
//!
//! - readers (transport connection handlers, in-process callers) grab the
//!   current view with [`ViewHandle::current`] — one `Arc` clone, no lock
//!   held afterwards — and answer `Predict`/`Estimate` from it without
//!   touching the fleet or its driver thread;
//! - the view's payload cells (merged predictions, merged soft-truth
//!   estimate, and the wire-encoded reply bytes per codec) are **lazily
//!   filled, once per epoch**: publication after a mutation costs one small
//!   allocation, and the full shard merge runs only when the epoch is
//!   actually read. The first read of an epoch pays the merge (through the
//!   fleet, which owns the engines); every later read of the same epoch is
//!   a cache hit, and on the wire it is a zero-copy write of bytes encoded
//!   once for that epoch.
//!
//! # Consistency
//!
//! A view can never tear: all of its cells are derived from the fleet state
//! at one epoch (the fleet fills them while it is at that epoch, and a
//! mutation publishes a *new* view rather than touching the old one).
//! Replies built from a view carry its epoch tag, and replaying the
//! recorded mutation prefix up to epoch E on a fresh fleet of the same
//! construction reproduces exactly the predictions a client read at E
//! (`Fleet::replay_to_epoch`, locked by `tests/read_view_stress.rs`).
//!
//! Epoch tags are comparable within one mutation lineage: a `Restore` op
//! adopts the manifest's recorded epoch (so replaying a log that contains
//! the restore reproduces the same tags), which may jump the counter
//! backwards — clients caching by epoch across a restore must treat the
//! restore as a new lineage.

use crate::protocol::{FleetOp, FleetReply};
use cpa_core::truth::TruthEstimate;
use cpa_data::labels::LabelSet;
use std::sync::{Arc, OnceLock, RwLock};

/// Number of wire-encoding slots each read reply is cached under — one per
/// wire codec (`cpa-transport` maps its JSON codec to slot 0 and the binary
/// codec to slot 1). `cpa-serve` itself never encodes; it only provides the
/// per-epoch cells.
pub const WIRE_SLOTS: usize = 2;

/// Which read a [`ReadView`] cell answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// `FleetOp::Predict` — merged consensus label sets.
    Predictions,
    /// `FleetOp::Estimate` — merged soft-truth estimate.
    Estimate,
}

impl ReadKind {
    /// Classifies an op as a view-servable read, or `None` for everything
    /// else (mutations, `Snapshot` — which reads the raw engine state, not
    /// the view — and `Shutdown`).
    pub fn of(op: &FleetOp) -> Option<ReadKind> {
        match op {
            FleetOp::Predict => Some(ReadKind::Predictions),
            FleetOp::Estimate => Some(ReadKind::Estimate),
            _ => None,
        }
    }

    fn index(self) -> usize {
        match self {
            ReadKind::Predictions => 0,
            ReadKind::Estimate => 1,
        }
    }
}

/// One epoch's immutable read state: the epoch number plus lazily-filled,
/// fill-once cells for the merged predictions, the merged estimate, and the
/// encoded reply bytes per [`ReadKind`] × wire slot.
///
/// Views are only ever constructed (and their value cells only ever filled)
/// by the owning `Fleet`; readers observe them through
/// [`ViewHandle::current`].
#[derive(Debug)]
pub struct ReadView {
    epoch: u64,
    predictions: OnceLock<Arc<Vec<LabelSet>>>,
    estimate: OnceLock<Arc<TruthEstimate>>,
    encoded: [OnceLock<Arc<Vec<u8>>>; 2 * WIRE_SLOTS],
}

impl ReadView {
    pub(crate) fn new(epoch: u64) -> Self {
        Self {
            epoch,
            predictions: OnceLock::new(),
            estimate: OnceLock::new(),
            encoded: Default::default(),
        }
    }

    /// The epoch this view was published at: the number of accepted
    /// mutations the fleet had applied.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The merged predictions, if this epoch's merge has run.
    pub fn predictions(&self) -> Option<Arc<Vec<LabelSet>>> {
        self.predictions.get().cloned()
    }

    /// The merged soft-truth estimate, if this epoch's merge has run.
    pub fn estimate(&self) -> Option<Arc<TruthEstimate>> {
        self.estimate.get().cloned()
    }

    /// Fills (or reads) the predictions cell — called by the fleet, which
    /// owns the engines the merge reads.
    pub(crate) fn predictions_or_init(
        &self,
        init: impl FnOnce() -> Vec<LabelSet>,
    ) -> Arc<Vec<LabelSet>> {
        self.predictions.get_or_init(|| Arc::new(init())).clone()
    }

    /// Fills (or reads) the estimate cell — called by the fleet.
    pub(crate) fn estimate_or_init(
        &self,
        init: impl FnOnce() -> TruthEstimate,
    ) -> Arc<TruthEstimate> {
        self.estimate.get_or_init(|| Arc::new(init())).clone()
    }

    /// Builds the epoch-tagged [`FleetReply`] for `kind` from the filled
    /// value cells, or `None` if this epoch's merge has not run yet (the
    /// reader should fall back to the fleet driver, whose `apply` fills the
    /// cell).
    pub fn reply(&self, kind: ReadKind) -> Option<FleetReply> {
        match kind {
            ReadKind::Predictions => self.predictions().map(|p| FleetReply::Predictions {
                predictions: (*p).clone(),
                epoch: self.epoch,
            }),
            ReadKind::Estimate => self.estimate().map(|e| FleetReply::Estimated {
                estimate: (*e).clone(),
                epoch: self.epoch,
            }),
        }
    }

    /// The cached encoded reply bytes for `kind` under wire `slot`, if some
    /// reader already encoded this epoch's reply under that codec.
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`.
    pub fn encoded(&self, kind: ReadKind, slot: usize) -> Option<Arc<Vec<u8>>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        self.encoded[kind.index() * WIRE_SLOTS + slot]
            .get()
            .cloned()
    }

    /// Publishes encoded reply bytes for `kind` under wire `slot` and
    /// returns the cell's content (the given bytes, or whatever another
    /// reader raced in first — both encode the same reply value, so the
    /// bytes are identical either way).
    ///
    /// # Panics
    /// Panics if `slot >= WIRE_SLOTS`.
    pub fn fill_encoded(&self, kind: ReadKind, slot: usize, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        assert!(slot < WIRE_SLOTS, "wire slot {slot} out of range");
        self.encoded[kind.index() * WIRE_SLOTS + slot]
            .get_or_init(|| Arc::new(bytes))
            .clone()
    }
}

/// A cloneable handle onto a fleet's current [`ReadView`].
///
/// The fleet swaps the inner `Arc` on every accepted mutation; readers call
/// [`ViewHandle::current`] per request and hold only the returned `Arc`
/// (never the lock), so reads proceed fully concurrently with each other
/// and with fleet mutations. Handles stay valid across `Restore` ops: the
/// fleet re-attaches the same handle to the restored state.
#[derive(Debug, Clone)]
pub struct ViewHandle {
    slot: Arc<RwLock<Arc<ReadView>>>,
}

impl ViewHandle {
    pub(crate) fn new(epoch: u64) -> Self {
        Self {
            slot: Arc::new(RwLock::new(Arc::new(ReadView::new(epoch)))),
        }
    }

    /// The currently published view (one `Arc` clone under a read lock).
    pub fn current(&self) -> Arc<ReadView> {
        self.slot.read().expect("view slot poisoned").clone()
    }

    /// Swaps in a fresh, empty view for `epoch` — the publication step of
    /// every accepted mutation.
    pub(crate) fn publish(&self, epoch: u64) {
        *self.slot.write().expect("view slot poisoned") = Arc::new(ReadView::new(epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpa_data::labels::LabelSet;

    #[test]
    fn read_kind_classifies_only_view_servable_reads() {
        assert_eq!(ReadKind::of(&FleetOp::Predict), Some(ReadKind::Predictions));
        assert_eq!(ReadKind::of(&FleetOp::Estimate), Some(ReadKind::Estimate));
        assert_eq!(ReadKind::of(&FleetOp::Refit), None);
        assert_eq!(ReadKind::of(&FleetOp::Snapshot), None);
        assert_eq!(ReadKind::of(&FleetOp::Shutdown), None);
    }

    #[test]
    fn cells_fill_once_and_replies_carry_the_epoch() {
        let view = ReadView::new(7);
        assert!(view.reply(ReadKind::Predictions).is_none());
        let first = view.predictions_or_init(|| vec![LabelSet::from_labels(3, vec![1])]);
        // A second init closure never runs: the cell is fill-once.
        let again = view.predictions_or_init(|| unreachable!("cell already filled"));
        assert!(Arc::ptr_eq(&first, &again));
        match view.reply(ReadKind::Predictions) {
            Some(FleetReply::Predictions { predictions, epoch }) => {
                assert_eq!(epoch, 7);
                assert_eq!(predictions.len(), 1);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }

    #[test]
    fn encoded_cells_are_per_kind_and_slot() {
        let view = ReadView::new(1);
        assert!(view.encoded(ReadKind::Predictions, 0).is_none());
        let bytes = view.fill_encoded(ReadKind::Predictions, 0, vec![1, 2, 3]);
        assert_eq!(*bytes, vec![1, 2, 3]);
        // Other slots and kinds are independent cells.
        assert!(view.encoded(ReadKind::Predictions, 1).is_none());
        assert!(view.encoded(ReadKind::Estimate, 0).is_none());
        // Racing fills keep the first value.
        let kept = view.fill_encoded(ReadKind::Predictions, 0, vec![9]);
        assert_eq!(*kept, vec![1, 2, 3]);
    }

    #[test]
    fn handle_swaps_views_atomically() {
        let handle = ViewHandle::new(0);
        let before = handle.current();
        assert_eq!(before.epoch(), 0);
        handle.publish(1);
        assert_eq!(handle.current().epoch(), 1);
        // The old view is untouched by the swap — readers that grabbed it
        // keep a consistent epoch-0 token.
        assert_eq!(before.epoch(), 0);
    }
}
