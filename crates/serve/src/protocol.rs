//! The fleet command protocol: every mutation of a [`crate::Fleet`] as a
//! serializable op.
//!
//! [`FleetOp`] is the closed vocabulary of things a fleet can be asked to
//! do, and [`FleetReply`] the typed result of each. The fleet's public
//! methods (`ingest`, `refit_all`, `snapshot`, …) are thin wrappers that
//! build an op and hand it to [`crate::Fleet::apply`] — the **one**
//! interpreter every mutation flows through — so anything that can produce
//! an op stream can drive a fleet with exactly the live semantics:
//!
//! - a transport (`cpa-transport` frames ops over TCP),
//! - a recorded **op-log** ([`ops_to_jsonl`] / [`ops_from_jsonl`], the
//!   versioned JSONL format of `cpa_data::io`) replayed through
//!   [`crate::Fleet::replay`],
//! - or plain in-process code.
//!
//! Because `apply` is deterministic (the PR 3/4 determinism story lifted to
//! the serving tier), replaying a recorded op-log against a fresh fleet
//! reproduces the live run's snapshot **byte for byte** — locked by
//! `tests/transport_roundtrip.rs`.
//!
//! # Wire shapes
//!
//! Ops and replies serialize through the workspace serde shim's externally
//! tagged enum encoding: unit variants as a JSON string (`"Refit"`), struct
//! variants as a one-key object (`{"Ingest": {...}}`). An ingest batch
//! carries the arriving workers plus their answers as
//! `(item, worker, labels)` triples — the same shape
//! [`cpa_data::queue::QueueProducer::push`] takes, validated by the same
//! [`cpa_data::queue::validate_batch`] contract. The batch's item set is
//! derived from the answers (as the live queue derives it), so an op is
//! self-contained.

use crate::fleet::FleetManifest;
use crate::view::ReadKind;
use cpa_core::truth::TruthEstimate;
use cpa_data::answers::AnswerMatrix;
use cpa_data::io::IoError;
use cpa_data::labels::LabelSet;
use cpa_data::stream::WorkerBatch;
use serde::{Deserialize, Serialize};

/// One command against a serving fleet. See the module docs for the wire
/// encoding and [`crate::Fleet::apply`] for the semantics of each op.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FleetOp {
    /// Ingest one arrival batch: the arriving workers plus their answers as
    /// `(item, worker, labels)` triples, validated against the queue
    /// arrival contract before anything is mutated.
    Ingest {
        /// Workers arriving in this batch.
        workers: Vec<usize>,
        /// Their answers as `(item, worker, labels)` triples.
        answers: Vec<(usize, usize, Vec<usize>)>,
    },
    /// Refit every shard (no-op for incremental engines).
    Refit,
    /// Merged consensus predictions in global item order.
    Predict,
    /// Merged soft-truth estimate in global item order.
    Estimate,
    /// Consensus predictions for exactly the requested items, echoed back
    /// in request order (duplicates allowed, any order, empty is valid).
    /// The all-items form stays [`FleetOp::Predict`]; this variant bounds
    /// the reply by the request.
    PredictItems {
        /// The items to predict, in the order the reply should echo.
        items: Vec<usize>,
    },
    /// Per-item soft-truth rows for exactly the requested items (same
    /// request semantics as [`FleetOp::PredictItems`]). Each row carries
    /// the item-indexed estimate fields only — the population-level
    /// `worker_weight`/`community_reliability` vectors stay on the
    /// all-items [`FleetOp::Estimate`] form.
    EstimateItems {
        /// The items to estimate, in the order the reply should echo.
        items: Vec<usize>,
    },
    /// Capture the whole fleet as a versioned manifest.
    Snapshot,
    /// Replace the fleet with one restored from `manifest` (requires a
    /// restore hook, [`crate::Fleet::with_restore_hook`]).
    Restore {
        /// The manifest to restore from.
        manifest: FleetManifest,
    },
    /// Subscribe to the fleet's **mutation stream**: after one
    /// [`FleetReply::Subscribed`] ack carrying the current epoch, the
    /// interpreter pushes every accepted mutation with an epoch greater
    /// than `from_epoch` as a [`FleetReply::OpApplied`] frame — first the
    /// recorded backlog (when op recording is on), then each new mutation
    /// the moment its view is published. This is the op-shipping channel a
    /// replication [`crate::replica::Follower`] tails; against a bare
    /// in-process fleet ([`crate::Fleet::apply`]) it is a read that just
    /// acks the current epoch.
    SubscribeOps {
        /// Resume point: only mutations with epoch > `from_epoch` are
        /// pushed (0 subscribes from the beginning of the lineage).
        from_epoch: u64,
    },
    /// Subscribe to the fleet's **read deltas**: the interpreter acks with a
    /// bootstrap snapshot — a [`FleetReply::PredictedDelta`] /
    /// [`FleetReply::EstimatedDelta`] carrying every subscribed item's row
    /// at the current epoch — and thereafter (over a transport that retains
    /// the subscription) pushes one delta frame per accepted mutation,
    /// carrying rows for **only the dirty shards'** subscribed items. A
    /// delta whose mutation dirtied no subscribed shard still arrives (with
    /// zero rows) so the subscriber's epoch tracks the head. Against a bare
    /// in-process fleet, this is a read that returns the bootstrap.
    SubscribeReads {
        /// Which read to subscribe to: consensus predictions or soft-truth
        /// estimate rows.
        kind: ReadKind,
        /// `None` subscribes to the full universe at subscription time;
        /// `Some(items)` to exactly those items. The item set is
        /// normalized (sorted, deduplicated) and echoed in the bootstrap.
        items: Option<Vec<usize>>,
    },
    /// Stop serving. The fleet itself is untouched; interpreters (the
    /// transport server, [`crate::Fleet::replay`]) stop consuming ops.
    Shutdown,
}

impl FleetOp {
    /// Builds the ingest op equivalent to one [`WorkerBatch`] over its
    /// source universe: each batch worker's answers to the batch's items,
    /// as self-contained triples. This is how the legacy
    /// `Fleet::ingest(answers, batch)` surface lowers into the protocol.
    pub fn ingest_from(answers: &AnswerMatrix, batch: &WorkerBatch) -> FleetOp {
        let mut triples = Vec::new();
        for &w in &batch.workers {
            for (item, labels) in answers.worker_answers(w) {
                let item = *item as usize;
                if batch.items.binary_search(&item).is_ok() {
                    triples.push((item, w, labels.to_vec()));
                }
            }
        }
        FleetOp::Ingest {
            workers: batch.workers.clone(),
            answers: triples,
        }
    }

    /// The op's stable display name ("Ingest", "Refit", …).
    pub fn name(&self) -> &'static str {
        match self {
            FleetOp::Ingest { .. } => "Ingest",
            FleetOp::Refit => "Refit",
            FleetOp::Predict => "Predict",
            FleetOp::Estimate => "Estimate",
            FleetOp::PredictItems { .. } => "PredictItems",
            FleetOp::EstimateItems { .. } => "EstimateItems",
            FleetOp::Snapshot => "Snapshot",
            FleetOp::Restore { .. } => "Restore",
            FleetOp::SubscribeOps { .. } => "SubscribeOps",
            FleetOp::SubscribeReads { .. } => "SubscribeReads",
            FleetOp::Shutdown => "Shutdown",
        }
    }

    /// True for ops that mutate fleet state when accepted (`Ingest`,
    /// `Refit`, `Restore`); reads and `Shutdown` leave it untouched.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            FleetOp::Ingest { .. } | FleetOp::Refit | FleetOp::Restore { .. }
        )
    }
}

/// The typed result of applying one [`FleetOp`]. Each accepted op maps to
/// exactly one success variant; any rejection is [`FleetReply::Error`] with
/// a human-readable message, and the fleet is left untouched.
///
/// # Epoch tags
///
/// Every state-bearing reply carries the fleet **epoch** it reflects — the
/// number of accepted mutations applied so far (see `Fleet::epoch`).
/// Mutation acks (`Ingested`, `Refitted`, `Restored`) report the epoch the
/// mutation *created*; read replies (`Predictions`, `Estimated`) report the
/// epoch of the published view they were answered from, so replaying the
/// recorded mutation prefix up to that epoch reproduces the reply's payload
/// bit for bit (`Fleet::replay_to_epoch`). `Manifest` carries its epoch
/// inside the manifest itself.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FleetReply {
    /// An `Ingest` was absorbed as arrival batch number `batch` (1-based).
    Ingested {
        /// The arrival index assigned to the batch.
        batch: usize,
        /// The fleet epoch this ingest created.
        epoch: u64,
    },
    /// A `Refit` completed on every shard.
    Refitted {
        /// The fleet epoch this refit created.
        epoch: u64,
    },
    /// A `Predict`'s merged consensus label sets, in global item order.
    Predictions {
        /// One label set per item.
        predictions: Vec<LabelSet>,
        /// The epoch of the read view these predictions came from.
        epoch: u64,
    },
    /// An `Estimate`'s merged soft-truth estimate.
    Estimated {
        /// The merged estimate (see `Fleet::estimate_all` for the merge).
        estimate: TruthEstimate,
        /// The epoch of the read view this estimate came from.
        epoch: u64,
    },
    /// A `PredictItems`' consensus label sets, echoing the request.
    PredictedItems {
        /// The requested items, in request order.
        items: Vec<usize>,
        /// One label set per requested item, aligned with `items`.
        predictions: Vec<LabelSet>,
        /// The epoch of the read view these predictions came from.
        epoch: u64,
    },
    /// An `EstimateItems`' per-item soft-truth rows, echoing the request.
    EstimatedItems {
        /// The requested items, in request order.
        items: Vec<usize>,
        /// One estimate row per requested item, aligned with `items`.
        rows: Vec<ItemEstimate>,
        /// The epoch of the read view these rows came from.
        epoch: u64,
    },
    /// A `Snapshot`'s versioned fleet manifest.
    Manifest {
        /// The captured manifest (carries the epoch it was captured at).
        manifest: FleetManifest,
    },
    /// A `Restore` replaced the fleet state.
    Restored {
        /// The restored fleet's epoch — adopted from the manifest, so it
        /// may jump backwards relative to the pre-restore lineage.
        epoch: u64,
    },
    /// A `SubscribeOps` was accepted; [`FleetReply::OpApplied`] frames
    /// follow (over a transport that retains the subscription).
    Subscribed {
        /// The fleet epoch at subscription time — the stream's head, so a
        /// subscriber can bound its observable lag from the first frame.
        epoch: u64,
    },
    /// A predictions read-delta frame: the bootstrap ack of a
    /// `SubscribeReads { kind: Predictions, .. }` (all subscribed rows,
    /// every covered shard listed dirty) and every pushed delta thereafter
    /// (rows for the subscribed items of the mutation's dirty shards only).
    /// `items` and `predictions` are aligned, in ascending item order.
    PredictedDelta {
        /// The subscribed items this frame carries rows for, ascending —
        /// the full subscription in a bootstrap, the dirty subset in a
        /// delta (possibly empty).
        items: Vec<usize>,
        /// One label set per carried item, aligned with `items`.
        predictions: Vec<LabelSet>,
        /// The shards contributing rows to this frame, ascending: every
        /// shard covering the subscription in a bootstrap; in a delta, the
        /// mutation's dirty shards that intersect the subscription.
        dirty_shards: Vec<usize>,
        /// The epoch of the published view this frame reflects. Applying
        /// the frame leaves a subscriber's row set bit-identical to a poll
        /// refetch at this epoch.
        epoch: u64,
    },
    /// An estimate read-delta frame — the [`FleetReply::PredictedDelta`]
    /// shape with per-item soft-truth rows ([`ItemEstimate`]).
    EstimatedDelta {
        /// The subscribed items this frame carries rows for, ascending.
        items: Vec<usize>,
        /// One estimate row per carried item, aligned with `items`.
        rows: Vec<ItemEstimate>,
        /// The shards contributing rows to this frame, ascending.
        dirty_shards: Vec<usize>,
        /// The epoch of the published view this frame reflects.
        epoch: u64,
    },
    /// One accepted mutation pushed to a `SubscribeOps` subscriber, tagged
    /// with the epoch the mutation created. Applying the op to a follower
    /// fleet whose epoch is `epoch - 1` reproduces the leader's state at
    /// `epoch` bit for bit (the replay guarantee, frame by frame).
    OpApplied {
        /// The epoch the mutation created on the publisher.
        epoch: u64,
        /// The mutation itself, exactly as the publisher applied it.
        op: FleetOp,
    },
    /// A `Shutdown` was acknowledged; no further ops will be consumed.
    ShuttingDown,
    /// The op was rejected; the fleet is unchanged.
    Error {
        /// Why the op was rejected.
        message: String,
    },
}

/// One item's slice of the merged soft-truth estimate — the row type of
/// [`FleetReply::EstimatedItems`]. A row carries exactly the item-indexed
/// fields of [`TruthEstimate`] for its item; the population-level vectors
/// (`worker_weight`, `community_reliability`) are not item-sliceable and
/// stay on the all-items `Estimated` reply.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ItemEstimate {
    /// Sparse `(label, probability)` pairs — `TruthEstimate::soft[item]`.
    pub soft: Vec<(usize, f64)>,
    /// Expected label-set size — `TruthEstimate::expected_size[item]`.
    pub expected_size: f64,
}

impl ItemEstimate {
    /// Slices one item's row out of a merged estimate.
    ///
    /// # Panics
    /// Panics if `item` is outside the estimate's universe.
    pub fn from_estimate(estimate: &TruthEstimate, item: usize) -> Self {
        Self {
            soft: estimate.soft[item].clone(),
            expected_size: estimate.expected_size[item],
        }
    }
}

impl FleetReply {
    /// The reply's stable display name ("Ingested", "Error", …).
    pub fn name(&self) -> &'static str {
        match self {
            FleetReply::Ingested { .. } => "Ingested",
            FleetReply::Refitted { .. } => "Refitted",
            FleetReply::Predictions { .. } => "Predictions",
            FleetReply::Estimated { .. } => "Estimated",
            FleetReply::PredictedItems { .. } => "PredictedItems",
            FleetReply::EstimatedItems { .. } => "EstimatedItems",
            FleetReply::Manifest { .. } => "Manifest",
            FleetReply::Restored { .. } => "Restored",
            FleetReply::Subscribed { .. } => "Subscribed",
            FleetReply::PredictedDelta { .. } => "PredictedDelta",
            FleetReply::EstimatedDelta { .. } => "EstimatedDelta",
            FleetReply::OpApplied { .. } => "OpApplied",
            FleetReply::ShuttingDown => "ShuttingDown",
            FleetReply::Error { .. } => "Error",
        }
    }

    /// The epoch tag carried by a state-bearing reply ([`FleetReply`] docs):
    /// `None` for `Shutdown` acks and errors; a `Manifest` reply reports the
    /// epoch recorded inside the manifest.
    pub fn epoch(&self) -> Option<u64> {
        match self {
            FleetReply::Ingested { epoch, .. }
            | FleetReply::Refitted { epoch }
            | FleetReply::Predictions { epoch, .. }
            | FleetReply::Estimated { epoch, .. }
            | FleetReply::PredictedItems { epoch, .. }
            | FleetReply::EstimatedItems { epoch, .. }
            | FleetReply::Restored { epoch }
            | FleetReply::Subscribed { epoch }
            | FleetReply::PredictedDelta { epoch, .. }
            | FleetReply::EstimatedDelta { epoch, .. }
            | FleetReply::OpApplied { epoch, .. } => Some(*epoch),
            FleetReply::Manifest { manifest } => Some(manifest.epoch),
            FleetReply::ShuttingDown | FleetReply::Error { .. } => None,
        }
    }

    /// Shorthand for an [`FleetReply::Error`] from any displayable cause.
    pub fn err(cause: impl std::fmt::Display) -> FleetReply {
        FleetReply::Error {
            message: cause.to_string(),
        }
    }
}

/// Serializes an op stream as a versioned JSONL op-log
/// ([`cpa_data::io::oplog_to_jsonl`]): a `{"op_log_version": 1}` header
/// line, then one op per line in applied order.
pub fn ops_to_jsonl(ops: &[FleetOp]) -> String {
    cpa_data::io::oplog_to_jsonl(ops)
}

/// Parses an op-log written by [`ops_to_jsonl`], with version-first
/// rejection and truncated-line hardening (see
/// [`cpa_data::io::oplog_from_jsonl`]).
///
/// # Errors
/// Fails on a missing/malformed header, a version mismatch, or a line that
/// does not decode as a [`FleetOp`] (named by its 1-based line number).
pub fn ops_from_jsonl(text: &str) -> Result<Vec<FleetOp>, IoError> {
    cpa_data::io::oplog_from_jsonl(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_roundtrip_through_the_jsonl_oplog() {
        let ops = vec![
            FleetOp::Ingest {
                workers: vec![0, 2],
                answers: vec![(0, 0, vec![1]), (1, 2, vec![0, 2])],
            },
            FleetOp::Refit,
            FleetOp::Predict,
            FleetOp::PredictItems {
                items: vec![3, 1, 1],
            },
            FleetOp::EstimateItems { items: vec![] },
            FleetOp::Snapshot,
            FleetOp::Shutdown,
        ];
        let jsonl = ops_to_jsonl(&ops);
        assert_eq!(jsonl.lines().count(), ops.len() + 1, "header + one op/line");
        let back = ops_from_jsonl(&jsonl).unwrap();
        assert_eq!(back.len(), ops.len());
        // Compare through JSON (FleetManifest/Checkpoint carry no PartialEq).
        for (a, b) in ops.iter().zip(&back) {
            assert_eq!(
                serde_json::to_string(a).unwrap(),
                serde_json::to_string(b).unwrap()
            );
        }
    }

    #[test]
    fn truncated_oplog_is_rejected_with_the_line_number() {
        let ops = vec![FleetOp::Refit, FleetOp::Predict, FleetOp::Shutdown];
        let jsonl = ops_to_jsonl(&ops);
        // Cut inside the final line (a crash mid-append).
        let cut = jsonl.len() - 3;
        let err = ops_from_jsonl(&jsonl[..cut]).unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn op_and_reply_names_are_stable() {
        assert_eq!(FleetOp::Refit.name(), "Refit");
        assert_eq!(
            FleetOp::Ingest {
                workers: vec![],
                answers: vec![]
            }
            .name(),
            "Ingest"
        );
        assert!(FleetOp::Refit.is_mutation());
        assert!(!FleetOp::Predict.is_mutation());
        assert_eq!(
            FleetOp::PredictItems { items: vec![0] }.name(),
            "PredictItems"
        );
        assert_eq!(
            FleetOp::EstimateItems { items: vec![0] }.name(),
            "EstimateItems"
        );
        // Ranged reads are reads: they never bump the epoch.
        assert!(!FleetOp::PredictItems { items: vec![0] }.is_mutation());
        assert!(!FleetOp::EstimateItems { items: vec![0] }.is_mutation());
        assert_eq!(FleetReply::err("nope").name(), "Error");
    }

    #[test]
    fn subscription_variants_are_additive_reads_with_epoch_tags() {
        // SubscribeOps is a read: it must never bump the epoch (a follower
        // subscribing cannot perturb the leader's lineage).
        let op = FleetOp::SubscribeOps { from_epoch: 7 };
        assert_eq!(op.name(), "SubscribeOps");
        assert!(!op.is_mutation());
        let subscribed = FleetReply::Subscribed { epoch: 12 };
        assert_eq!(subscribed.name(), "Subscribed");
        assert_eq!(subscribed.epoch(), Some(12));
        let pushed = FleetReply::OpApplied {
            epoch: 13,
            op: FleetOp::Refit,
        };
        assert_eq!(pushed.name(), "OpApplied");
        assert_eq!(pushed.epoch(), Some(13));
        // Both sides of the shipping channel survive the wire encoding.
        for json in [
            serde_json::to_string(&op).unwrap(),
            serde_json::to_string(&pushed).unwrap(),
        ] {
            assert!(json.contains("7") || json.contains("13"), "{json}");
        }
        let back: FleetReply =
            serde_json::from_str(&serde_json::to_string(&pushed).unwrap()).unwrap();
        match back {
            FleetReply::OpApplied { epoch, op } => {
                assert_eq!(epoch, 13);
                assert_eq!(op.name(), "Refit");
            }
            other => panic!("unexpected decode {}", other.name()),
        }
    }

    #[test]
    fn read_subscription_variants_roundtrip_and_never_mutate() {
        // SubscribeReads is a read: the epoch lineage must not notice a
        // subscriber arriving.
        let full = FleetOp::SubscribeReads {
            kind: ReadKind::Predictions,
            items: None,
        };
        let ranged = FleetOp::SubscribeReads {
            kind: ReadKind::Estimate,
            items: Some(vec![4, 1, 4]),
        };
        for op in [&full, &ranged] {
            assert_eq!(op.name(), "SubscribeReads");
            assert!(!op.is_mutation());
            let json = serde_json::to_string(op).unwrap();
            let back: FleetOp = serde_json::from_str(&json).unwrap();
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
        // `items: None` rides the wire as null and comes back as None.
        assert!(serde_json::to_string(&full).unwrap().contains("null"));

        let delta = FleetReply::PredictedDelta {
            items: vec![0, 3],
            predictions: vec![],
            dirty_shards: vec![1],
            epoch: 6,
        };
        assert_eq!(delta.name(), "PredictedDelta");
        assert_eq!(delta.epoch(), Some(6));
        let est = FleetReply::EstimatedDelta {
            items: vec![],
            rows: vec![],
            dirty_shards: vec![],
            epoch: 2,
        };
        assert_eq!(est.name(), "EstimatedDelta");
        assert_eq!(est.epoch(), Some(2));
        for reply in [&delta, &est] {
            let json = serde_json::to_string(reply).unwrap();
            let back: FleetReply = serde_json::from_str(&json).unwrap();
            assert_eq!(serde_json::to_string(&back).unwrap(), json);
        }
    }

    #[test]
    fn ranged_replies_carry_epoch_tags_and_names() {
        let predicted = FleetReply::PredictedItems {
            items: vec![2, 0],
            predictions: vec![],
            epoch: 5,
        };
        assert_eq!(predicted.name(), "PredictedItems");
        assert_eq!(predicted.epoch(), Some(5));
        let estimated = FleetReply::EstimatedItems {
            items: vec![1],
            rows: vec![ItemEstimate {
                soft: vec![(0, 0.75)],
                expected_size: 1.5,
            }],
            epoch: 9,
        };
        assert_eq!(estimated.name(), "EstimatedItems");
        assert_eq!(estimated.epoch(), Some(9));
        // Both survive the wire encoding round trip.
        let json = serde_json::to_string(&estimated).unwrap();
        let back: FleetReply = serde_json::from_str(&json).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
