//! Client-side read-delta cache: the receiving half of
//! `FleetOp::SubscribeReads`.
//!
//! A [`ReadCache`] is built from the subscription's bootstrap frame (a
//! [`FleetReply::PredictedDelta`] / [`FleetReply::EstimatedDelta`] carrying
//! every subscribed item's row at the epoch the server acked) and then
//! [`ReadCache::apply`]s each pushed delta frame — rows for only the dirty
//! shards' subscribed items. After every applied frame the cache holds, for
//! each subscribed item, exactly the row a poll refetch
//! (`PredictItems` / `EstimateItems` over the same items) would return at
//! the cache's epoch — bit-identical values with the same epoch tag, at
//! zero round trips (locked by `tests/push_reads.rs`).
//!
//! Like every epoch-tagged surface, the cache is comparable within one
//! mutation lineage: a `Restore` on the publisher ships as a whole-universe
//! delta whose epoch may jump backwards, and the cache adopts it — the
//! restore is a new lineage, not a regression.
//!
//! The cache is transport-agnostic (it consumes [`FleetReply`] values, not
//! sockets) — `cpa-transport`'s `ReadSubscription` owns the socket and
//! feeds one of these, the same split as [`crate::replica::Follower`] over
//! an `OpFeed`.

use crate::protocol::{FleetReply, ItemEstimate};
use crate::view::ReadKind;
use cpa_data::labels::LabelSet;
use std::collections::BTreeMap;
use std::fmt;

/// Why a frame could not construct or apply to a [`ReadCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushError {
    /// The frame is not a read-delta frame, or its row kind does not match
    /// the subscription's [`ReadKind`].
    KindMismatch {
        /// The offending frame's reply name.
        frame: String,
    },
    /// The frame carries a row for an item the subscription never covered.
    UnknownItem {
        /// The offending item.
        item: usize,
    },
    /// The frame's `items` and row payload disagree in length.
    RowCount {
        /// Number of items the frame names.
        items: usize,
        /// Number of rows it carries.
        rows: usize,
    },
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::KindMismatch { frame } => {
                write!(f, "frame {frame} does not match the subscription kind")
            }
            PushError::UnknownItem { item } => {
                write!(f, "delta row for item {item} outside the subscription")
            }
            PushError::RowCount { items, rows } => {
                write!(f, "delta names {items} items but carries {rows} rows")
            }
        }
    }
}

impl std::error::Error for PushError {}

/// What one applied delta frame changed — the per-frame accounting a
/// subscriber (or a bench measuring bytes-per-epoch) reads off
/// [`ReadCache::apply`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The epoch the cache now reflects.
    pub epoch: u64,
    /// Rows the frame replaced (0 for a clean-shard epoch bump).
    pub rows: usize,
    /// Shards that contributed those rows.
    pub dirty_shards: usize,
}

/// The subscribed rows, kind-specific. Exactly one side is populated for
/// the life of a cache.
#[derive(Debug, Clone)]
enum Rows {
    Predictions(Vec<LabelSet>),
    Estimates(Vec<ItemEstimate>),
}

/// A locally materialized, epoch-tagged row set maintained by applying
/// read-delta frames. See the module docs for the fidelity contract.
#[derive(Debug, Clone)]
pub struct ReadCache {
    kind: ReadKind,
    /// The subscribed items, ascending — the order rows are held and
    /// served in (the bootstrap's normalized echo).
    items: Vec<usize>,
    /// item → position in `items`.
    slot: BTreeMap<usize, usize>,
    epoch: u64,
    rows: Rows,
}

impl ReadCache {
    /// Builds the cache from a subscription's bootstrap frame.
    ///
    /// # Errors
    /// [`PushError::KindMismatch`] if the frame is not a delta frame of
    /// `kind`; [`PushError::RowCount`] if its items and rows misalign.
    pub fn from_bootstrap(kind: ReadKind, bootstrap: &FleetReply) -> Result<ReadCache, PushError> {
        let (items, rows, epoch) = match (kind, bootstrap) {
            (
                ReadKind::Predictions,
                FleetReply::PredictedDelta {
                    items,
                    predictions,
                    epoch,
                    ..
                },
            ) => (items, Rows::Predictions(predictions.clone()), *epoch),
            (
                ReadKind::Estimate,
                FleetReply::EstimatedDelta {
                    items, rows, epoch, ..
                },
            ) => (items, Rows::Estimates(rows.clone()), *epoch),
            _ => {
                return Err(PushError::KindMismatch {
                    frame: bootstrap.name().to_string(),
                })
            }
        };
        let len = match &rows {
            Rows::Predictions(r) => r.len(),
            Rows::Estimates(r) => r.len(),
        };
        if len != items.len() {
            return Err(PushError::RowCount {
                items: items.len(),
                rows: len,
            });
        }
        let slot = items.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        Ok(ReadCache {
            kind,
            items: items.clone(),
            slot,
            epoch,
            rows,
        })
    }

    /// Applies one pushed delta frame: replaces the named items' rows and
    /// adopts the frame's epoch. A frame with zero rows is a pure epoch
    /// bump (the mutation dirtied no subscribed shard). On any error the
    /// cache is left **unchanged**.
    ///
    /// # Errors
    /// [`PushError::KindMismatch`] for a non-delta frame or the wrong row
    /// kind, [`PushError::RowCount`] for misaligned items/rows,
    /// [`PushError::UnknownItem`] for a row outside the subscription.
    pub fn apply(&mut self, delta: &FleetReply) -> Result<AppliedDelta, PushError> {
        let (items, epoch, dirty_shards) = match (self.kind, delta) {
            (
                ReadKind::Predictions,
                FleetReply::PredictedDelta {
                    items,
                    predictions,
                    dirty_shards,
                    epoch,
                },
            ) => {
                if predictions.len() != items.len() {
                    return Err(PushError::RowCount {
                        items: items.len(),
                        rows: predictions.len(),
                    });
                }
                let slots = self.slots_of(items)?;
                let Rows::Predictions(rows) = &mut self.rows else {
                    unreachable!("kind and rows are constructed together");
                };
                for (&slot, row) in slots.iter().zip(predictions) {
                    rows[slot] = row.clone();
                }
                (items, *epoch, dirty_shards.len())
            }
            (
                ReadKind::Estimate,
                FleetReply::EstimatedDelta {
                    items,
                    rows: new_rows,
                    dirty_shards,
                    epoch,
                },
            ) => {
                if new_rows.len() != items.len() {
                    return Err(PushError::RowCount {
                        items: items.len(),
                        rows: new_rows.len(),
                    });
                }
                let slots = self.slots_of(items)?;
                let Rows::Estimates(rows) = &mut self.rows else {
                    unreachable!("kind and rows are constructed together");
                };
                for (&slot, row) in slots.iter().zip(new_rows) {
                    rows[slot] = row.clone();
                }
                (items, *epoch, dirty_shards.len())
            }
            _ => {
                return Err(PushError::KindMismatch {
                    frame: delta.name().to_string(),
                })
            }
        };
        self.epoch = epoch;
        Ok(AppliedDelta {
            epoch,
            rows: items.len(),
            dirty_shards,
        })
    }

    /// Resolves every named item to its row slot, or fails before anything
    /// is mutated (keeping `apply` all-or-nothing).
    fn slots_of(&self, items: &[usize]) -> Result<Vec<usize>, PushError> {
        items
            .iter()
            .map(|&i| {
                self.slot
                    .get(&i)
                    .copied()
                    .ok_or(PushError::UnknownItem { item: i })
            })
            .collect()
    }

    /// The subscription's read kind.
    pub fn kind(&self) -> ReadKind {
        self.kind
    }

    /// The subscribed items, ascending — the order [`ReadCache::predictions`]
    /// / [`ReadCache::estimates`] rows are served in.
    pub fn items(&self) -> &[usize] {
        &self.items
    }

    /// The epoch the cached rows reflect — the tag a poll refetch returning
    /// these exact rows would carry.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cached consensus rows, aligned with [`ReadCache::items`] —
    /// the zero-RTT equivalent of `predict_items(items)` at
    /// [`ReadCache::epoch`]. `None` for an estimate subscription.
    pub fn predictions(&self) -> Option<&[LabelSet]> {
        match &self.rows {
            Rows::Predictions(rows) => Some(rows),
            Rows::Estimates(_) => None,
        }
    }

    /// The cached estimate rows, aligned with [`ReadCache::items`] — the
    /// zero-RTT equivalent of `estimate_items(items)` at
    /// [`ReadCache::epoch`]. `None` for a predictions subscription.
    pub fn estimates(&self) -> Option<&[ItemEstimate]> {
        match &self.rows {
            Rows::Estimates(rows) => Some(rows),
            Rows::Predictions(_) => None,
        }
    }

    /// One item's cached consensus row, or `None` if the item is outside
    /// the subscription (or the kind is `Estimate`).
    pub fn predict(&self, item: usize) -> Option<&LabelSet> {
        let slot = *self.slot.get(&item)?;
        self.predictions().map(|rows| &rows[slot])
    }

    /// One item's cached estimate row, or `None` if the item is outside
    /// the subscription (or the kind is `Predictions`).
    pub fn estimate(&self, item: usize) -> Option<&ItemEstimate> {
        let slot = *self.slot.get(&item)?;
        self.estimates().map(|rows| &rows[slot])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn label(n: usize) -> LabelSet {
        LabelSet::from_labels(4, vec![n % 4])
    }

    fn bootstrap(items: Vec<usize>, epoch: u64) -> FleetReply {
        let predictions = items.iter().map(|&i| label(i)).collect();
        FleetReply::PredictedDelta {
            items: items.clone(),
            predictions,
            dirty_shards: vec![0],
            epoch,
        }
    }

    #[test]
    fn bootstrap_then_deltas_maintain_rows_and_epoch() {
        let mut cache =
            ReadCache::from_bootstrap(ReadKind::Predictions, &bootstrap(vec![1, 3, 5], 2)).unwrap();
        assert_eq!(cache.epoch(), 2);
        assert_eq!(cache.items(), &[1, 3, 5]);
        assert_eq!(cache.predict(3), Some(&label(3)));
        assert_eq!(cache.predict(2), None, "outside the subscription");
        assert!(cache.estimates().is_none());

        // A delta replacing one row bumps the epoch and touches only it.
        let applied = cache
            .apply(&FleetReply::PredictedDelta {
                items: vec![3],
                predictions: vec![label(0)],
                dirty_shards: vec![1],
                epoch: 3,
            })
            .unwrap();
        assert_eq!(
            applied,
            AppliedDelta {
                epoch: 3,
                rows: 1,
                dirty_shards: 1
            }
        );
        assert_eq!(cache.predict(3), Some(&label(0)));
        assert_eq!(cache.predict(1), Some(&label(1)), "untouched row kept");
        assert_eq!(cache.epoch(), 3);

        // An empty delta is a pure epoch bump (clean-shard mutation).
        cache
            .apply(&FleetReply::PredictedDelta {
                items: vec![],
                predictions: vec![],
                dirty_shards: vec![],
                epoch: 4,
            })
            .unwrap();
        assert_eq!(cache.epoch(), 4);
    }

    #[test]
    fn bad_frames_are_rejected_and_leave_the_cache_unchanged() {
        let mut cache =
            ReadCache::from_bootstrap(ReadKind::Predictions, &bootstrap(vec![0, 2], 1)).unwrap();
        // Unknown item: rejected atomically, even when another row in the
        // same frame is valid.
        let err = cache
            .apply(&FleetReply::PredictedDelta {
                items: vec![0, 9],
                predictions: vec![label(3), label(3)],
                dirty_shards: vec![0],
                epoch: 2,
            })
            .unwrap_err();
        assert_eq!(err, PushError::UnknownItem { item: 9 });
        assert_eq!(cache.epoch(), 1, "failed apply must not advance");
        assert_eq!(cache.predict(0), Some(&label(0)), "no partial write");

        // Misaligned rows.
        let err = cache
            .apply(&FleetReply::PredictedDelta {
                items: vec![0, 2],
                predictions: vec![label(1)],
                dirty_shards: vec![0],
                epoch: 2,
            })
            .unwrap_err();
        assert_eq!(err, PushError::RowCount { items: 2, rows: 1 });

        // Wrong kind (an estimate frame on a predictions subscription) and
        // non-delta frames.
        for frame in [
            FleetReply::EstimatedDelta {
                items: vec![0],
                rows: vec![ItemEstimate {
                    soft: vec![],
                    expected_size: 0.0,
                }],
                dirty_shards: vec![0],
                epoch: 2,
            },
            FleetReply::ShuttingDown,
        ] {
            let err = cache.apply(&frame).unwrap_err();
            assert!(matches!(err, PushError::KindMismatch { .. }), "{err}");
        }
        assert_eq!(cache.epoch(), 1);

        // A bootstrap of the wrong kind is refused up front.
        let err =
            ReadCache::from_bootstrap(ReadKind::Estimate, &bootstrap(vec![0], 1)).unwrap_err();
        assert!(matches!(err, PushError::KindMismatch { .. }), "{err}");
    }

    #[test]
    fn estimate_caches_hold_item_rows() {
        let row = |e: f64| ItemEstimate {
            soft: vec![(0, 0.5)],
            expected_size: e,
        };
        let boot = FleetReply::EstimatedDelta {
            items: vec![4, 7],
            rows: vec![row(1.0), row(2.0)],
            dirty_shards: vec![0, 1],
            epoch: 5,
        };
        let mut cache = ReadCache::from_bootstrap(ReadKind::Estimate, &boot).unwrap();
        assert_eq!(cache.estimate(7), Some(&row(2.0)));
        assert!(cache.predictions().is_none());
        cache
            .apply(&FleetReply::EstimatedDelta {
                items: vec![4],
                rows: vec![row(9.0)],
                dirty_shards: vec![0],
                epoch: 6,
            })
            .unwrap();
        assert_eq!(cache.estimates(), Some(&[row(9.0), row(2.0)][..]));
        // A restore on the publisher may jump the epoch backwards: the
        // cache adopts the new lineage rather than rejecting it.
        cache
            .apply(&FleetReply::EstimatedDelta {
                items: vec![4, 7],
                rows: vec![row(0.5), row(0.25)],
                dirty_shards: vec![0, 1],
                epoch: 2,
            })
            .unwrap();
        assert_eq!(cache.epoch(), 2);
    }
}
