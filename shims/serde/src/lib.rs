//! Offline stand-in for `serde`: [`Serialize`]/[`Deserialize`] traits (and
//! derive macros) over a self-describing JSON-like [`Value`] model. The
//! companion `serde_json` shim renders and parses [`Value`] as JSON text.
//! See `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Self-describing data model every (de)serializable type maps through.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (kept exact, never via `f64`).
    Int(i64),
    /// Unsigned integer (kept exact, never via `f64`).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries, or `None` for non-objects.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Borrows the array elements, or `None` for non-arrays.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric view as `f64` (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// Numeric view as `u64` (exact; rejects negatives and fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            _ => None,
        }
    }

    /// Numeric view as `i64` (exact; rejects out-of-range and fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            Value::Float(f)
                if f.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&f) =>
            {
                Some(f as i64)
            }
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// (De)serialization error: a message, optionally with a path-ish context.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }

    /// Convenience: "expected X, found Y"-style mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        let kind = match found {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        Error::custom(format!("expected {expected}, found {kind}"))
    }

    /// Convenience: missing object field.
    pub fn missing_field(name: &str) -> Self {
        Error::custom(format!("missing field `{name}`"))
    }

    /// Convenience: unknown enum variant.
    pub fn unknown_variant(name: &str) -> Self {
        Error::custom(format!("unknown variant `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into the [`Value`] model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn serialize(&self) -> Value;
}

/// Types reconstructible from the [`Value`] model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---- primitive impls -------------------------------------------------------

// Identity: a `Value` embeds in any serialized structure as itself (the shim
// counterpart of real serde_json's `impl Serialize for Value`).
impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::mismatch("bool", value))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| Error::mismatch("unsigned integer", value))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| Error::mismatch("integer", value))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::mismatch("number", value))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value
            .as_f64()
            .ok_or_else(|| Error::mismatch("number", value))? as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::mismatch("char", value))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::mismatch("string", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

// ---- containers ------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::mismatch("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::mismatch("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::mismatch("array", value))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::mismatch("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_object()
            .ok_or_else(|| Error::mismatch("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let items = value.as_array().ok_or_else(|| Error::mismatch("array", value))?;
                if items.len() != $len {
                    return Err(Error::custom(format!(
                        "expected array of length {}, found {}", $len, items.len()
                    )));
                }
                Ok(($($name::deserialize(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}
