//! Offline stand-in for `criterion`: enough API for this workspace's bench
//! targets to compile (`cargo bench --no-run`) and smoke-run (`cargo bench`
//! executes each body once and prints wall-clock time). Not a statistically
//! sound measurement harness. See `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| {
            f(b)
        });
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher { elapsed_ns: 0 };
    f(&mut bencher);
    println!(
        "bench {label}: {} ns/iter (criterion shim, 1 iter)",
        bencher.elapsed_ns
    );
}

/// Timing handle passed to benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    elapsed_ns: u128,
}

impl Bencher {
    /// Runs the routine once and records its wall-clock time.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let _keep = routine();
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the shim's flat string benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
///
/// `cargo bench`/`cargo test` pass harness flags (`--bench`, `--test`,
/// `--nocapture`, filters); the shim accepts and ignores them, except
/// `--test`, which skips execution entirely so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
        assert_eq!(ran, 1);
    }
}
