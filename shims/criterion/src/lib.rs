//! Offline stand-in for `criterion`: enough API for this workspace's bench
//! targets to compile (`cargo bench --no-run`) and run (`cargo bench` runs
//! each body through one warmup iteration plus `CRITERION_SHIM_SAMPLES`
//! timed iterations — default 3 — and prints the min and median wall-clock
//! times). Minimally trustworthy numbers, not criterion's full statistical
//! machinery. See `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim always runs one iteration.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| {
            f(b)
        });
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.into_benchmark_id()), |b| {
            f(b, input)
        });
        self
    }

    /// Finishes the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Timed samples per benchmark (after one warmup iteration). Overridable via
/// the `CRITERION_SHIM_SAMPLES` environment variable; kept small because
/// several targets run whole model fits per iteration.
fn sample_count() -> usize {
    std::env::var("CRITERION_SHIM_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(3)
}

fn run_one(label: &str, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples_ns: Vec::new(),
    };
    f(&mut bencher);
    let (min, median, n) = bencher.summary();
    println!(
        "bench {label}: min {min} ns, median {median} ns ({n} iters + 1 warmup, criterion shim)"
    );
}

/// Timing handle passed to benchmark bodies.
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<u128>,
}

impl Bencher {
    /// Runs the routine through one (untimed) warmup iteration, then
    /// `sample_count()` timed iterations, recording each wall-clock sample.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let _warmup = routine();
        self.samples_ns.clear();
        for _ in 0..sample_count() {
            let start = Instant::now();
            let _keep = routine();
            self.samples_ns.push(start.elapsed().as_nanos());
        }
    }

    /// `(min, median, samples)` of the recorded iterations.
    fn summary(&self) -> (u128, u128, usize) {
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        let min = sorted.first().copied().unwrap_or(0);
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0);
        (min, median, sorted.len())
    }
}

/// Benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only identifier.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into the shim's flat string benchmark id.
pub trait IntoBenchmarkId {
    /// Renders the id.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring `criterion_main!`.
///
/// `cargo bench`/`cargo test` pass harness flags (`--bench`, `--test`,
/// `--nocapture`, filters); the shim accepts and ignores them, except
/// `--test`, which skips execution entirely so `cargo test` stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if ::std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut ran = 0;
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.bench_function(BenchmarkId::from_parameter("p"), |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.bench_with_input(BenchmarkId::new("f", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
        // One warmup iteration plus the timed samples.
        assert_eq!(ran, 1 + sample_count());
    }

    #[test]
    fn summary_reports_min_and_median() {
        let b = Bencher {
            samples_ns: vec![30, 10, 20],
        };
        let (min, median, n) = b.summary();
        assert_eq!((min, median, n), (10, 20, 3));
    }
}
