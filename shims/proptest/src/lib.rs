//! Offline stand-in for `proptest`: the `proptest!` / `prop_assert*` macros
//! and the range/collection/tuple strategies this workspace uses. Each
//! property runs a fixed number of cases with inputs drawn from a
//! deterministic RNG seeded from the test's module path; failures are
//! reported with the case number but are **not shrunk**. See
//! `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Per-property configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The RNG driving input generation (deterministic per test).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seeds the generator from an arbitrary name (FNV-1a of the bytes), so a
    /// given property always sees the same input sequence.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(hash),
        }
    }
}

/// Value generators, mirroring (a sliver of) `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.random_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.random_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.inner.random_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s; the size range bounds the number of
    /// *insertions*, so duplicates may yield smaller sets (no shrinking or
    /// retrying, matching this shim's simplicity).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.inner.random_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Supports the subset this workspace uses: an optional leading
/// `#![proptest_config(expr)]`, then `#[test] fn name(pat in strategy, ...)
/// { body }` items. Bodies may use [`prop_assert!`]-family macros.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property {} failed on case {case}/{}: {message}",
                            stringify!($name),
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// `assert_eq!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest harness.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}` (both: `{:?}`)",
                stringify!($left),
                stringify!($right),
                l,
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..1.5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn collections_respect_sizes(
            v in crate::collection::vec(0u32..5, 1..8),
            s in crate::collection::btree_set(0usize..100, 0..10),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(s.len() < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }

        #[test]
        fn tuples_generate((a, b) in (0u64..4, 0u64..4), t in (0i32..2, 0i32..2, 0i32..2)) {
            prop_assert!(a < 4 && b < 4);
            prop_assert!(t.0 < 2 && t.1 < 2 && t.2 < 2);
        }
    }

    #[test]
    fn deterministic_rng_is_stable() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        let s = 0usize..1000;
        assert_eq!(
            Strategy::generate(&s, &mut a),
            Strategy::generate(&s, &mut b)
        );
    }
}
