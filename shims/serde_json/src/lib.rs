//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] model to JSON text and parses it back. Integers round-trip
//! exactly (`u64`/`i64` are never routed through `f64`); non-finite floats
//! serialize as `null` and parse back as NaN. See `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::deserialize(&value)
}

// ---- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, items.len(), indent, depth, '[', ']', |out, i, d| {
            write_value(out, &items[i], indent, d);
        }),
        Value::Object(entries) => {
            write_seq(out, entries.len(), indent, depth, '{', '}', |out, i, d| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, d);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&u64::MAX).unwrap(), u64::MAX.to_string());
        assert_eq!(from_str::<u64>(&u64::MAX.to_string()).unwrap(), u64::MAX);
        assert_eq!(from_str::<i64>("-42").unwrap(), -42);
        assert_eq!(from_str::<f64>("1e3").unwrap(), 1000.0);
    }

    #[test]
    fn collections_round_trip() {
        let v: Vec<(u32, String)> = vec![(1, "a\"b".into()), (2, "\n".into())];
        let json = to_string(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = vec![vec![1u64, 2], vec![3]];
        let json = to_string_pretty(&v).unwrap();
        assert!(json.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<bool>("true x").is_err());
        assert!(from_str::<Vec<u32>>("[1, ").is_err());
    }
}
