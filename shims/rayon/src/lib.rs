//! Offline stand-in for `rayon`: the parallel-iterator entry points used by
//! this workspace, executed **sequentially** on the calling thread. The
//! abstraction boundary is preserved (code written against this shim is
//! written against rayon's API), but no threads are spawned. See
//! `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;

/// Re-exports that `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator};
}

/// Sequential stand-in for `rayon::iter::IntoParallelIterator`: yields a
/// plain [`Iterator`], so the usual `map`/`filter`/`collect` chains apply.
pub trait IntoParallelIterator {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type.
    type Item;

    /// Converts `self` into a (sequential) "parallel" iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Iter = I::IntoIter;
    type Item = I::Item;

    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// Sequential stand-in for `rayon::iter::IntoParallelRefIterator`
/// (`.par_iter()` on slices and collections).
pub trait IntoParallelRefIterator<'a> {
    /// The iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: 'a;

    /// Borrowing (sequential) "parallel" iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
{
    type Iter = <&'a C as IntoIterator>::IntoIter;
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_iter()
    }
}

/// Stand-in thread pool: [`ThreadPool::install`] simply runs the closure on
/// the calling thread.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` "inside" the pool (here: inline) and returns its result.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    /// The configured thread count (informational only in this shim).
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
    _not_send: PhantomData<()>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num_threads` worker threads (recorded, not spawned).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this shim.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type kept for signature compatibility; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_installs_inline() {
        let pool = crate::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }
}
