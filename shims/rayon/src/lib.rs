//! Offline stand-in for `rayon`: the parallel-iterator entry points used by
//! this workspace, executed on a **real `std::thread` pool**. Work is
//! distributed over scoped threads in fixed chunks claimed through an atomic
//! index; results are written to per-chunk slots and reassembled in input
//! order, so `par_iter().map(f).collect()` returns exactly what the
//! sequential equivalent would — just faster on multi-core hardware. No
//! `unsafe` anywhere (see `#![deny(unsafe_code)]`).
//!
//! Deviations from the real crate, by design of this workspace (see
//! `shims/README.md`):
//!
//! - outside [`ThreadPool::install`] the shim runs **sequentially** (real
//!   rayon would use its implicit global pool). This workspace routes all
//!   parallelism through explicit `ThreadPool`s sized by `CpaConfig::threads`,
//!   so "no pool installed" deliberately means "serial".
//! - the combinator surface is exactly what the workspace uses: `map`,
//!   `collect`, `sum`, `for_each`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Re-exports that `use rayon::prelude::*` is expected to bring in scope.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Thread count installed by the innermost [`ThreadPool::install`] on
    /// this thread; 1 (serial) when no pool is installed.
    static INSTALLED_THREADS: Cell<usize> = const { Cell::new(1) };
}

/// Number of worker threads the current scope should use.
fn current_threads() -> usize {
    INSTALLED_THREADS.with(|c| c.get()).max(1)
}

/// How many chunks each worker thread gets on average; >1 so that uneven
/// per-item costs are load-balanced through the shared atomic index.
const CHUNKS_PER_THREAD: usize = 4;

/// Applies `f` to every item of `items`, in parallel over the currently
/// installed thread count, returning outputs in input order.
///
/// Items are split into fixed chunks up front; worker threads (scoped, so
/// borrowed state needs no `'static`) claim chunks via an atomic counter,
/// compute into per-chunk result slots, and the caller thread participates
/// too. A panic inside `f` propagates when the scope joins.
fn parallel_map_vec<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = current_threads();
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    let num_chunks = (threads * CHUNKS_PER_THREAD).min(n);
    let chunk_size = n.div_ceil(num_chunks);

    // Per-chunk input and output slots. Mutexes are uncontended (each chunk
    // is claimed by exactly one thread through the atomic index); they exist
    // to give the scoped threads shared, safe access to the slots.
    let mut inputs: Vec<Mutex<Vec<T>>> = Vec::with_capacity(num_chunks);
    let mut iter = items.into_iter();
    loop {
        let chunk: Vec<T> = iter.by_ref().take(chunk_size).collect();
        if chunk.is_empty() {
            break;
        }
        inputs.push(Mutex::new(chunk));
    }
    let outputs: Vec<Mutex<Vec<R>>> = (0..inputs.len()).map(|_| Mutex::new(Vec::new())).collect();
    let next = AtomicUsize::new(0);

    let work = || loop {
        let k = next.fetch_add(1, Ordering::Relaxed);
        if k >= inputs.len() {
            break;
        }
        let chunk = std::mem::take(&mut *inputs[k].lock().expect("input slot poisoned"));
        let done: Vec<R> = chunk.into_iter().map(f).collect();
        *outputs[k].lock().expect("output slot poisoned") = done;
    };

    let spawned = threads.min(inputs.len()).saturating_sub(1);
    thread::scope(|s| {
        for _ in 0..spawned {
            s.spawn(work);
        }
        // The calling thread drains chunks alongside the spawned workers.
        work();
    });

    outputs
        .into_iter()
        .flat_map(|slot| slot.into_inner().expect("output slot poisoned"))
        .collect()
}

/// The shim's parallel-iterator trait: a fixed set of items plus a composed
/// per-item pipeline, executed by `parallel_map_vec` at the sink.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by this stage of the pipeline.
    type Item: Send;

    /// Applies `f` to every item in parallel, preserving input order.
    /// This is the single execution primitive all sinks reduce to.
    fn run_with<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync;

    /// Maps each item through `f` (executed on the worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collects the items in input order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.run_with(|x| x))
    }

    /// Sums the items. The reduction itself happens in input order on the
    /// calling thread, so the result is deterministic and identical to the
    /// sequential sum.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.run_with(|x| x).into_iter().sum()
    }

    /// Runs `f` on every item for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.run_with(f);
    }
}

/// Base parallel iterator over an owned vector of items.
#[derive(Debug)]
pub struct VecParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecParIter<T> {
    type Item = T;

    fn run_with<R, F>(self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        parallel_map_vec(self.items, &f)
    }
}

/// A mapped parallel iterator; the closure runs on the worker threads.
#[derive(Debug)]
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync + Send,
{
    type Item = R;

    fn run_with<R2, G>(self, g: G) -> Vec<R2>
    where
        R2: Send,
        G: Fn(R) -> R2 + Sync,
    {
        let f = self.f;
        self.base.run_with(move |x| g(f(x)))
    }
}

/// Stand-in for `rayon::iter::IntoParallelIterator`. Materialises the source
/// eagerly into a vector, then hands chunks to the pool.
pub trait IntoParallelIterator {
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<I> IntoParallelIterator for I
where
    I: IntoIterator,
    I::Item: Send,
{
    type Iter = VecParIter<I::Item>;
    type Item = I::Item;

    fn into_par_iter(self) -> Self::Iter {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Stand-in for `rayon::iter::IntoParallelRefIterator` (`.par_iter()` on
/// slices and collections).
pub trait IntoParallelRefIterator<'a> {
    /// The parallel iterator produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type (a shared reference).
    type Item: Send + 'a;

    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, C: 'a + ?Sized> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoIterator,
    <&'a C as IntoIterator>::Item: Send,
{
    type Iter = VecParIter<<&'a C as IntoIterator>::Item>;
    type Item = <&'a C as IntoIterator>::Item;

    fn par_iter(&'a self) -> Self::Iter {
        VecParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// A thread pool: [`ThreadPool::install`] makes `par_iter()` chains inside
/// the closure fan out over `num_threads` scoped OS threads.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count installed for the duration:
    /// parallel iterators inside `op` use `num_threads` workers. Unlike real
    /// rayon, `op` itself runs on the calling thread (and that thread
    /// participates in the chunk work), which is observationally equivalent
    /// for this workspace.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        INSTALLED_THREADS.with(|c| {
            let prev = c.replace(self.num_threads);
            // Restore on unwind as well, so a panicking op does not leave an
            // inflated thread count installed on this thread.
            struct Restore<'a>(&'a Cell<usize>, usize);
            impl Drop for Restore<'_> {
                fn drop(&mut self) {
                    self.0.set(self.1);
                }
            }
            let _restore = Restore(c, prev);
            op()
        })
    }

    /// The configured thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests `num_threads` worker threads. As in real rayon, 0 means
    /// "pick a default" — the machine's available parallelism.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in this shim (threads are spawned scoped,
    /// per parallel call, not up front).
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let num_threads = if self.num_threads == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.num_threads
        };
        Ok(ThreadPool { num_threads })
    }
}

/// Error type kept for signature compatibility; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    fn pool(n: usize) -> crate::ThreadPool {
        crate::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
    }

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn pool_installs_thread_count() {
        let pool = pool(4);
        assert_eq!(pool.current_num_threads(), 4);
        assert_eq!(pool.install(|| 7), 7);
    }

    #[test]
    fn parallel_collect_preserves_order() {
        let pool = pool(8);
        let n = 10_000usize;
        let out: Vec<usize> = pool.install(|| (0..n).into_par_iter().map(|i| i * i).collect());
        let expect: Vec<usize> = (0..n).map(|i| i * i).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn work_actually_spreads_over_threads() {
        let pool = pool(4);
        let ids = Mutex::new(HashSet::new());
        pool.install(|| {
            (0..64).into_par_iter().for_each(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                // Block long enough that the caller cannot race through every
                // chunk before the spawned workers are scheduled (matters on
                // single-core machines).
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
        });
        // 4 installed threads and 16 chunks: more than one OS thread must
        // have participated (the caller plus at least one spawned worker).
        assert!(ids.lock().unwrap().len() > 1, "no parallelism observed");
    }

    #[test]
    fn no_install_means_serial() {
        let before = std::thread::current().id();
        let ids: Vec<_> = (0..64)
            .into_par_iter()
            .map(|_| std::thread::current().id())
            .collect();
        assert!(ids.iter().all(|&id| id == before));
    }

    #[test]
    fn install_restores_on_nested_use() {
        let outer = pool(2);
        let inner = pool(6);
        outer.install(|| {
            inner.install(|| {
                assert_eq!(super::current_threads(), 6);
            });
            assert_eq!(super::current_threads(), 2);
        });
        assert_eq!(super::current_threads(), 1);
    }

    #[test]
    fn empty_and_single_item_inputs() {
        let pool = pool(4);
        let empty: Vec<i32> =
            pool.install(|| Vec::<i32>::new().into_par_iter().map(|x| x).collect());
        assert!(empty.is_empty());
        let one: Vec<i32> = pool.install(|| vec![41].into_par_iter().map(|x| x + 1).collect());
        assert_eq!(one, vec![42]);
    }

    #[test]
    fn panics_propagate() {
        let pool = pool(4);
        let result = std::panic::catch_unwind(|| {
            pool.install(|| {
                (0..100usize)
                    .into_par_iter()
                    .map(|i| {
                        if i == 57 {
                            panic!("boom");
                        }
                        i
                    })
                    .collect::<Vec<usize>>()
            })
        });
        assert!(result.is_err());
        // The installed thread count must have been restored despite the
        // panic, so subsequent code on this thread is serial again.
        assert_eq!(super::current_threads(), 1);
    }
}
