//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim. `syn`/`quote` are not available in this environment,
//! so the item is parsed directly from the [`proc_macro::TokenStream`] and the
//! impls are emitted as source text.
//!
//! Supported shapes (everything this workspace derives):
//! - structs with named fields (including empty `{}` and unit structs);
//! - enums whose variants are unit or struct-like.
//!
//! Unsupported shapes (tuple structs, tuple enum variants, generics) fail the
//! build with an explicit message rather than silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (shim): renders the item into `serde::Value`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), \
                         ::serde::Serialize::serialize(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(entries)"
            )
        }
        Shape::Unit => "::serde::Value::Object(::std::vec::Vec::new())".to_string(),
        Shape::Enum(variants) => {
            let name = &item.name;
            let arms: String = variants
                .iter()
                .map(|v| match &v.fields {
                    None => format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),",
                        v = v.name
                    ),
                    Some(fields) => {
                        let binds = fields.join(", ");
                        let pushes: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "inner.push(({f:?}.to_string(), \
                                     ::serde::Serialize::serialize({f})));"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => {{ \
                             let mut inner: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new(); {pushes} \
                             ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Value::Object(inner))]) }}",
                            v = v.name
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ \
         fn serialize(&self) -> ::serde::Value {{ {body} }} }}",
        name = item.name
    )
    .parse()
    .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (shim): rebuilds the item from `serde::Value`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::deserialize(value.get({f:?})\
                         .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,"
                    )
                })
                .collect();
            format!(
                "value.as_object().ok_or_else(|| ::serde::Error::mismatch(\"object\", value))?; \
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Unit => format!(
            "value.as_object().ok_or_else(|| ::serde::Error::mismatch(\"object\", value))?; \
             ::std::result::Result::Ok({name})"
        ),
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|fields| (v, fields)))
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::deserialize(inner.get({f:?})\
                                 .ok_or_else(|| ::serde::Error::missing_field({f:?}))?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                        v = v.name
                    )
                })
                .collect();
            format!(
                "if let ::std::option::Option::Some(tag) = value.as_str() {{ \
                     return match tag {{ {unit_arms} \
                         other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)), }}; \
                 }} \
                 if let ::std::option::Option::Some(entries) = value.as_object() {{ \
                     if entries.len() == 1 {{ \
                         let (tag, inner) = &entries[0]; \
                         return match tag.as_str() {{ {tagged_arms} \
                             other => ::std::result::Result::Err(::serde::Error::unknown_variant(other)), }}; \
                     }} \
                 }} \
                 ::std::result::Result::Err(::serde::Error::mismatch(\"enum {name}\", value))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn deserialize(value: &::serde::Value) \
         -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} }}"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl must parse")
}

// ---- item parsing ----------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    /// `struct Name { a: T, b: U }` — field names in declaration order.
    NamedStruct(Vec<String>),
    /// `struct Name;`
    Unit,
    /// `enum Name { ... }`
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct-like variants.
    fields: Option<Vec<String>>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported")
            }
            other => panic!("serde_derive shim: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
            other => panic!("serde_derive shim: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive shim: `{other} {name}` is not supported"),
    };
    Item { name, shape }
}

/// Advances past any `#[...]` (incl. doc comments, which arrive as `#[doc]`).
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1; // '#'
        if matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
            *i += 1; // inner attribute '!'
        }
        *i += 1; // the [...] group
    }
}

/// Advances past `pub`, `pub(crate)`, `pub(in ...)`.
fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

/// Parses `a: T, b: U, ...` field names, skipping types (angle-bracket aware:
/// commas inside `<...>` do not terminate a field; parenthesised/bracketed
/// types arrive as atomic groups).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other}"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after `{name}`, found {other}"),
        }
        let mut angle_depth = 0usize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parses enum variants: `Unit, StructLike { a: T }, ...`.
fn parse_variants(stream: TokenStream, enum_name: &str) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                panic!("serde_derive shim: expected variant name in `{enum_name}`, found {other}")
            }
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Some(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple variant `{enum_name}::{name}` is not supported")
            }
            _ => None,
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}
