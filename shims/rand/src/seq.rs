//! Slice helpers mirroring `rand::seq`.

use crate::Rng;

/// In-place random reordering of slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher-Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` on an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_in_bounds() {
        let mut rng = StdRng::seed_from_u64(6);
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
