//! Offline stand-in for the `rand` crate (0.9 API surface used by this
//! workspace): a deterministic [`rngs::StdRng`] built on xoshiro256++,
//! [`Rng::random`] / [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`seq::SliceRandom::shuffle`]. See `shims/README.md`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random value generation, mirroring `rand::Rng` (0.9 names).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type;
    /// `bool`: fair coin).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::random`].
pub trait StandardUniform: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws uniformly from `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f32::sample_standard(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let neg = rng.random_range(-5i64..5);
        assert!((-5..5).contains(&neg));
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            let freq = c as f64 / n as f64;
            assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
        }
    }
}
