//! Online aggregation: answers arrive in worker batches and intermediate
//! consensus is available after every batch (the paper's §4.1 motivation —
//! decide early whether a task is done or needs redesign).
//!
//! ```sh
//! cargo run --release --example online_streaming
//! ```

use cpa::prelude::*;
use cpa_math::rng::seeded;

fn main() {
    let profile = DatasetProfile::topic().scaled(0.15);
    let sim = simulate(&profile, 11);
    println!(
        "topic-annotation crowd: {} tweets, {} workers, {} topics",
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels()
    );

    // Stream workers in batches of 10% of the population.
    let active = (0..sim.dataset.num_workers())
        .filter(|&w| !sim.dataset.answers.worker_answers(w).is_empty())
        .count();
    let mut rng = seeded(99);
    let stream = WorkerStream::new(&sim.dataset, active.div_ceil(10).max(1), &mut rng);

    // Incremental CPA with the paper's forgetting rate r = 0.875.
    let mut online = OnlineCpa::new(
        CpaConfig::default().with_seed(11),
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        0.875,
    );

    println!("\narrival  answers  precision  recall   (intermediate consensus)");
    let mut last_f1 = 0.0;
    let total = stream.len();
    for batch in stream.iter() {
        online.partial_fit(&sim.dataset.answers, batch);
        let preds = online.predict_all();
        let m = evaluate(&preds, &sim.dataset.truth);
        println!(
            "{:>6}%  {:>7}  {:.3}      {:.3}",
            batch.index * 100 / total,
            online.seen_answers().num_answers(),
            m.precision,
            m.recall
        );
        // Early-termination policy: stop paying for answers once the
        // consensus quality plateaus (here: F1 gain below half a point).
        if batch.index > total / 2 && (m.f1 - last_f1).abs() < 0.005 {
            println!("(quality plateaued — a real deployment could stop the task here)");
        }
        last_f1 = m.f1;
    }

    // Final comparison against refitting from scratch (the offline engine).
    let offline = CpaModel::new(CpaConfig::default().with_seed(11)).fit(&sim.dataset.answers);
    let m_off = evaluate(
        &offline.predict_all(&sim.dataset.answers),
        &sim.dataset.truth,
    );
    let m_on = evaluate(&online.predict_all(), &sim.dataset.truth);
    println!(
        "\nfinal: online P={:.3}/R={:.3} vs offline P={:.3}/R={:.3} (paper Table 5: online trails by a few points)",
        m_on.precision, m_on.recall, m_off.precision, m_off.recall
    );
}
