//! Label-hierarchy prior — the paper's §7 future-work extension.
//!
//! When a label taxonomy is known (e.g. NUS-WIDE's tag groups), it can be
//! injected into a fitted CPA model as prior knowledge: evidence for one
//! child label lends bounded support to its siblings. This example fits CPA
//! on the image profile, injects (a) the *true* planted taxonomy and (b) a
//! deliberately wrong one, and shows the effect on precision/recall.
//!
//! ```sh
//! cargo run --release --example hierarchy_prior
//! ```

use cpa::core::hierarchy::{apply_hierarchy, LabelHierarchy};
use cpa::prelude::*;

fn main() {
    let profile = DatasetProfile::image().scaled(0.1);
    let sim = simulate(&profile, 77);
    let model = CpaModel::new(CpaConfig::default().with_truncation(12, 15).with_seed(77));

    // Plain CPA, no prior knowledge.
    let plain = model.fit(&sim.dataset.answers);
    let m0 = evaluate(&plain.predict_all(&sim.dataset.answers), &sim.dataset.truth);
    println!(
        "plain CPA            P={:.3} R={:.3} F1={:.3}",
        m0.precision, m0.recall, m0.f1
    );

    // Inject the true taxonomy (the simulator's planted label groups).
    let mut with_true = model.fit(&sim.dataset.answers);
    let taxonomy = LabelHierarchy::from_affinity(&sim.affinity);
    apply_hierarchy(&mut with_true, &taxonomy, 0.2);
    let m1 = evaluate(
        &with_true.predict_all(&sim.dataset.answers),
        &sim.dataset.truth,
    );
    println!(
        "with true hierarchy  P={:.3} R={:.3} F1={:.3}",
        m1.precision, m1.recall, m1.f1
    );

    // Inject a wrong taxonomy (labels grouped by parity — pure noise).
    let mut with_wrong = model.fit(&sim.dataset.answers);
    let wrong = LabelHierarchy::new((0..sim.dataset.num_labels()).map(|c| c % 2).collect());
    apply_hierarchy(&mut with_wrong, &wrong, 0.2);
    let m2 = evaluate(
        &with_wrong.predict_all(&sim.dataset.answers),
        &sim.dataset.truth,
    );
    println!(
        "with wrong hierarchy P={:.3} R={:.3} F1={:.3}",
        m2.precision, m2.recall, m2.f1
    );

    println!(
        "\ntakeaway: a correct taxonomy is a free nudge ({:+.3} F1); even a wrong one is \
         bounded by the smoothing rate ({:+.3} F1)",
        m1.f1 - m0.f1,
        m2.f1 - m0.f1
    );
}
