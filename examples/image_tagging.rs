//! Image tagging with correlated labels — the paper's motivating domain.
//!
//! NUS-WIDE-style data: 81 tags with strong co-occurrence groups ("sky"
//! co-occurs with "clouds", not with "indoor"). This example shows how CPA's
//! item clusters capture those dependencies and lift recall over per-label
//! baselines, and inspects the learned cluster/community structure.
//!
//! ```sh
//! cargo run --release --example image_tagging
//! ```

use cpa::core::diagnostics::{cluster_summaries, community_summaries};
use cpa::prelude::*;

fn main() {
    let profile = DatasetProfile::image().scaled(0.15);
    let sim = simulate(&profile, 7);
    println!(
        "image-tagging crowd: {} pictures, {} workers, {} tags, {} answers",
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        sim.dataset.answers.num_answers()
    );

    // Aggregate with every method from the paper's Table 4 roster.
    let methods: Vec<(&str, Vec<LabelSet>)> = vec![
        ("MV", MajorityVoting::new().aggregate(&sim.dataset.answers)),
        ("EM", DawidSkene::new().aggregate(&sim.dataset.answers)),
        ("cBCC", CommunityBcc::new().aggregate(&sim.dataset.answers)),
    ];
    let fitted = CpaModel::new(CpaConfig::default().with_truncation(15, 20).with_seed(7))
        .fit(&sim.dataset.answers);
    let cpa_preds = fitted.predict_all(&sim.dataset.answers);

    println!("\nmethod   precision  recall  F1");
    for (name, preds) in &methods {
        let m = evaluate(preds, &sim.dataset.truth);
        println!(
            "{name:<8} {:.3}      {:.3}   {:.3}",
            m.precision, m.recall, m.f1
        );
    }
    let m = evaluate(&cpa_preds, &sim.dataset.truth);
    println!(
        "CPA      {:.3}      {:.3}   {:.3}",
        m.precision, m.recall, m.f1
    );

    // Inspect the learned structure: item clusters should align with the
    // planted tag co-occurrence groups.
    println!("\ntop item clusters (tag co-occurrence groups the model found):");
    for c in cluster_summaries(&fitted).into_iter().take(5) {
        println!(
            "  cluster {:>2}: {:>4} pictures, top tags {:?}",
            c.cluster, c.members, c.top_labels
        );
    }
    println!("\ntop worker communities:");
    for c in community_summaries(&fitted).into_iter().take(5) {
        println!(
            "  community {:>2}: {:>4} workers, informativeness {:.3}",
            c.community, c.members, c.reliability
        );
    }
}
