//! Running CPA on your own data: CSV import/export round trip.
//!
//! Real crowdsourcing platforms export long-format CSVs of
//! `(item, worker, label)` votes. This example writes a simulated crowd to
//! that format, loads it back as a fresh dataset, aggregates it, and prints
//! crowd-health diagnostics (inter-annotator agreement) a practitioner would
//! check before paying for more answers.
//!
//! ```sh
//! cargo run --release --example csv_import
//! ```

use cpa::data::agreement::{chance_corrected_agreement, item_difficulty, observed_agreement};
use cpa::data::io::{load_dataset_csv, save_dataset_csv};
use cpa::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend this came from a crowdsourcing platform.
    let sim = simulate(&DatasetProfile::topic().scaled(0.08), 55);
    let dir = std::env::temp_dir().join("cpa_csv_example");
    save_dataset_csv(&sim.dataset, &dir)?;
    println!("exported answers.csv + truth.csv to {}", dir.display());

    // Load it back as if it were external data.
    let dataset = load_dataset_csv("imported-topics", &dir, sim.dataset.num_labels())?;
    println!(
        "imported: {} items, {} workers, {} answers",
        dataset.num_items(),
        dataset.num_workers(),
        dataset.answers.num_answers()
    );

    // Crowd health check before aggregation.
    let obs = observed_agreement(&dataset.answers);
    let alpha = chance_corrected_agreement(&dataset.answers);
    println!("inter-annotator agreement: observed {obs:.3}, chance-corrected {alpha:.3}");
    let mut hard: Vec<(usize, f64)> = (0..dataset.num_items())
        .filter_map(|i| item_difficulty(&dataset.answers, i).map(|d| (i, d)))
        .collect();
    hard.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!(
        "hardest items (most disagreement): {:?}",
        &hard[..3.min(hard.len())]
    );

    // Aggregate and score against the imported truth.
    let fitted = CpaModel::new(CpaConfig::default().with_seed(55)).fit(&dataset.answers);
    let preds = fitted.predict_all(&dataset.answers);
    let m = evaluate(&preds, &dataset.truth);
    println!(
        "CPA on imported data: P={:.3} R={:.3} F1={:.3}",
        m.precision, m.recall, m.f1
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
