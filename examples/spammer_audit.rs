//! Spammer audit: inject spammers into a crowd (as in the paper's Fig. 4
//! robustness study) and use CPA's worker weights to *identify* them, then
//! show the aggregation barely moves while cBCC degrades.
//!
//! ```sh
//! cargo run --release --example spammer_audit
//! ```

use cpa::prelude::*;
use cpa_data::perturb::inject_spammers_sim;
use cpa_math::rng::seeded;

fn main() {
    let profile = DatasetProfile::aspect().scaled(0.12);
    let clean = simulate(&profile, 23);

    // Make spammers 40% of all answers — the paper's harshest setting.
    let mut rng = seeded(5);
    let spammed = inject_spammers_sim(&clean, 0.4, &mut rng);
    println!(
        "crowd grew from {} to {} workers; {} of {} answers are spam",
        clean.dataset.num_workers(),
        spammed.dataset.num_workers(),
        spammed.dataset.answers.num_answers() - clean.dataset.answers.num_answers(),
        spammed.dataset.answers.num_answers()
    );

    // Accuracy before/after for cBCC (the paper's best baseline) and CPA.
    for (name, clean_preds, spam_preds) in [
        (
            "cBCC",
            CommunityBcc::new().aggregate(&clean.dataset.answers),
            CommunityBcc::new().aggregate(&spammed.dataset.answers),
        ),
        (
            "CPA",
            CpaModel::new(CpaConfig::default().with_seed(23))
                .fit(&clean.dataset.answers)
                .predict_all(&clean.dataset.answers),
            CpaModel::new(CpaConfig::default().with_seed(23))
                .fit(&spammed.dataset.answers)
                .predict_all(&spammed.dataset.answers),
        ),
    ] {
        let before = evaluate(&clean_preds, &clean.dataset.truth);
        let after = evaluate(&spam_preds, &spammed.dataset.truth);
        println!(
            "{name:<5} precision {:.3} → {:.3}   recall {:.3} → {:.3}",
            before.precision, after.precision, before.recall, after.recall
        );
    }

    // Audit: rank workers by CPA's inferred weight; spammers should sink to
    // the bottom.
    let fitted = CpaModel::new(CpaConfig::default().with_seed(23)).fit(&spammed.dataset.answers);
    let weights = fitted.worker_weights();
    let mut ranked: Vec<usize> = (0..spammed.dataset.num_workers())
        .filter(|&u| !spammed.dataset.answers.worker_answers(u).is_empty())
        .collect();
    ranked.sort_by(|&a, &b| weights[a].partial_cmp(&weights[b]).expect("finite"));

    let bottom = ranked.len() / 5;
    let spammers_in_bottom = ranked[..bottom]
        .iter()
        .filter(|&&u| spammed.worker_types[u].is_spammer())
        .count();
    let total_spammers = ranked
        .iter()
        .filter(|&&u| spammed.worker_types[u].is_spammer())
        .count();
    println!(
        "\naudit: bottom-20% by inferred weight contains {spammers_in_bottom} spammers \
         ({} of all {} spammers caught without any ground truth)",
        spammers_in_bottom, total_spammers
    );
    for &u in ranked.iter().take(5) {
        println!(
            "  worker {u:>4}  weight {:.4}  planted type {:?}",
            weights[u], spammed.worker_types[u]
        );
    }
}
