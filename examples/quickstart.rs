//! Quickstart: simulate a small multi-label crowdsourcing task, aggregate it
//! with CPA, and compare against majority voting.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cpa::prelude::*;

fn main() {
    // A small crowd over the paper's movie-genre profile (500 movies at full
    // scale; 10% here): 22 genres, workers assign genre *sets* per movie.
    let profile = DatasetProfile::movie().scaled(0.1);
    let sim = simulate(&profile, 42);
    println!(
        "dataset `{}`: {} items, {} workers, {} labels, {} answers",
        sim.dataset.name,
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        sim.dataset.answers.num_answers()
    );

    // Fit CPA (unsupervised — no ground truth revealed) and predict.
    let model = CpaModel::new(CpaConfig::default().with_seed(42));
    let fitted = model.fit(&sim.dataset.answers);
    let consensus = fitted.predict_all(&sim.dataset.answers);

    // Compare against the majority-voting baseline.
    let mv = MajorityVoting::new().aggregate(&sim.dataset.answers);
    let m_cpa = evaluate(&consensus, &sim.dataset.truth);
    let m_mv = evaluate(&mv, &sim.dataset.truth);
    println!(
        "CPA: P={:.3} R={:.3} F1={:.3}",
        m_cpa.precision, m_cpa.recall, m_cpa.f1
    );
    println!(
        "MV : P={:.3} R={:.3} F1={:.3}",
        m_mv.precision, m_mv.recall, m_mv.f1
    );

    // What the model learned about the crowd.
    println!(
        "fit: {} iterations (converged: {}), {} effective communities, {} effective clusters",
        fitted.report().iterations,
        fitted.report().converged,
        fitted.effective_communities(0.02),
        fitted.effective_clusters(0.02)
    );

    // A few example consensus label sets.
    for (i, labels) in consensus.iter().take(3).enumerate() {
        println!(
            "item {i}: consensus {:?}, truth {:?}",
            labels.to_vec(),
            sim.dataset.truth[i].to_vec()
        );
    }
    assert!(
        m_cpa.f1 >= m_mv.f1 - 0.05,
        "CPA should be competitive with MV"
    );
}
