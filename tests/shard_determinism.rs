//! Shard determinism: the fleet contract of `cpa-serve`, pinned at multiple
//! thread counts.
//!
//! Contract 1 (shard equivalence): a K-shard fleet's merged predictions are
//! **bit-identical** to driving each shard's engine standalone over that
//! shard's universe and the **non-empty** batches of its batch split —
//! sharding is pure partitioning (a shard's engine observes exactly the
//! arrival batches that routed answers to it, which is also what lets
//! clean shards' read slabs carry across epochs), and it never changes
//! what any single shard computes.
//!
//! Contract 2 (manifest resume): pausing a fleet mid-stream — manifest →
//! JSON → restore through the `restore_engine` hook — and continuing is
//! bit-identical to never pausing.
//!
//! Both are exercised for K ∈ {1, 2, 4} at 1 and 4 fleet threads plus the
//! `CPA_TEST_THREADS` CI matrix value, with the incremental CPA-SVI engine
//! (whose learning-rate schedule makes it the hardest case). K=1 is
//! additionally pinned to the completely unsharded engine run.

use cpa::core::engine::drive;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{BatchSource, MemorySource, WorkerBatch, WorkerStream};
use cpa::eval::runner::{engine_for, restore_engine, Method};
use cpa::math::rng::seeded;
use cpa::serve::{Fleet, FleetManifest, ShardRouter};

const SEED: u64 = 5417;

/// Thread counts to pin: 1 and 4, plus the CI matrix value when it differs.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(n) = std::env::var("CPA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0 && !counts.contains(&n))
    {
        counts.push(n);
    }
    counts
}

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.06), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 9, &mut rng).into_batches();
    assert!(
        batches.len() >= 4,
        "need enough batches to pause mid-stream"
    );
    (sim.dataset, batches)
}

fn fleet_for(d: &cpa::data::dataset::Dataset, shards: usize, threads: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, threads, i, u, c, |_| {
        Method::CpaSvi.engine(i, u, c, SEED)
    })
}

#[test]
fn merged_predictions_equal_standalone_shard_engines() {
    let (d, batches) = fixture();
    for threads in thread_counts() {
        for k in [1usize, 2, 4] {
            let mut fleet = fleet_for(&d, k, threads);
            fleet.drive(&mut MemorySource::new(&d.answers, batches.clone()));
            let merged = fleet.predict_all();

            // Standalone reference: one engine per shard, driven over that
            // shard's universe and the non-empty batches of its split, no
            // fleet involved — the fleet skips a shard entirely when a
            // batch routes it nothing, so the standalone engine must too.
            let router = ShardRouter::new(k);
            let shard_universes = router.split_answers(&d.answers);
            for (s, universe) in shard_universes.iter().enumerate() {
                let mut engine =
                    Method::CpaSvi.engine(d.num_items(), d.num_workers(), d.num_labels(), SEED);
                let shard_batches: Vec<WorkerBatch> = batches
                    .iter()
                    .map(|b| router.split_batch(b, &d.answers)[s].clone())
                    .filter(|split| !split.items.is_empty())
                    .collect();
                drive(
                    engine.as_mut(),
                    &mut MemorySource::new(universe, shard_batches),
                );
                let standalone = engine.predict_all();
                for i in 0..d.num_items() {
                    if router.route(i) == s {
                        assert_eq!(
                            merged[i], standalone[i],
                            "item {i}: fleet K={k} diverged from standalone shard {s} \
                             at {threads} thread(s)"
                        );
                    }
                }
            }

            // K=1 is exactly the unsharded engine.
            if k == 1 {
                let mut engine = engine_for(Method::CpaSvi, &d, SEED);
                drive(
                    engine.as_mut(),
                    &mut MemorySource::new(&d.answers, batches.clone()),
                );
                assert_eq!(
                    merged,
                    engine.predict_all(),
                    "K=1 fleet diverged from the unsharded engine at {threads} thread(s)"
                );
            }
        }
    }
}

#[test]
fn fleet_predictions_are_identical_across_thread_counts() {
    let (d, batches) = fixture();
    for k in [1usize, 2, 4] {
        let mut reference = None;
        for threads in thread_counts() {
            let mut fleet = fleet_for(&d, k, threads);
            fleet.drive(&mut MemorySource::new(&d.answers, batches.clone()));
            let preds = fleet.predict_all();
            let est = fleet.estimate_all();
            match &reference {
                None => reference = Some((preds, est)),
                Some((ref_preds, ref_est)) => {
                    assert_eq!(&preds, ref_preds, "K={k}: thread count changed predictions");
                    assert_eq!(est.soft, ref_est.soft, "K={k}");
                    assert_eq!(est.worker_weight, ref_est.worker_weight, "K={k}");
                }
            }
        }
    }
}

#[test]
fn manifest_resume_is_bit_identical_to_never_pausing() {
    let (d, batches) = fixture();
    let pause_at = batches.len() / 2;
    for threads in thread_counts() {
        for k in [1usize, 2, 4] {
            // Uninterrupted run.
            let mut uninterrupted = fleet_for(&d, k, threads);
            uninterrupted.drive(&mut MemorySource::new(&d.answers, batches.clone()));

            // Paused run: half the stream, manifest → JSON → restore,
            // continue, refit.
            let mut paused = fleet_for(&d, k, threads);
            let mut head = MemorySource::new(&d.answers, batches[..pause_at].to_vec());
            while let Some(batch) = head.next_batch() {
                paused.ingest(&d.answers, &batch);
            }
            let json = paused.snapshot().to_json();
            drop(paused);
            let manifest = FleetManifest::from_json(&json).expect("manifest parses");
            let mut resumed =
                Fleet::restore(manifest, threads, restore_engine).expect("manifest restores");
            assert_eq!(resumed.num_shards(), k);
            resumed.drive(&mut MemorySource::new(
                &d.answers,
                batches[pause_at..].to_vec(),
            ));

            assert_eq!(
                resumed.predict_all(),
                uninterrupted.predict_all(),
                "K={k}: predictions diverged after manifest resume at {threads} thread(s)"
            );
            let (a, b) = (resumed.estimate_all(), uninterrupted.estimate_all());
            assert_eq!(a.soft, b.soft, "K={k} at {threads} thread(s)");
            assert_eq!(a.expected_size, b.expected_size, "K={k}");
            assert_eq!(a.worker_weight, b.worker_weight, "K={k}");
            assert_eq!(
                resumed.num_answers_seen(),
                d.answers.num_answers(),
                "K={k}: answers lost across the manifest"
            );
        }
    }
}
