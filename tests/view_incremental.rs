//! Incremental read views: carry-forward ≡ full recompute, and item-ranged
//! reads ≡ slices of all-items reads.
//!
//! Contract 1 (incremental ≡ from-scratch): after every accepted mutation
//! of a random mutation sequence, a fleet whose views carried clean
//! shards' slabs across epochs serves **bit-identical** per-shard slabs,
//! merged predictions, and merged estimates to a fresh fleet that replayed
//! the same prefix from scratch (whose view never carried anything) — at
//! K ∈ {1, 2, 4}.
//!
//! Contract 2 (ranged ≡ sliced): `PredictItems { items }` echoes exactly
//! the corresponding slice of the all-items `Predict` at every epoch, and
//! `EstimateItems` rows equal the per-item fields of the merged estimate —
//! in-process and over both wire codecs (JSON and negotiated binary).
//!
//! Contract 3 (carry-forward is zero-copy): after an ingest routed to 1 of
//! K=4 shards, the clean shards' slab `Arc`s in the newly published view
//! are **pointer-identical** to the previous epoch's, and only the dirty
//! shard's slab is recomputed on first read.

use cpa::data::dataset::Dataset;
use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::WorkerStream;
use cpa::eval::runner::Method;
use cpa::math::rng::seeded;
use cpa::serve::{Fleet, FleetOp, FleetReply};
use cpa::transport::{FleetClient, FleetServer, ServerConfig, WireFormat};
use proptest::prelude::*;
use rand::Rng;
use std::sync::Arc;

const SEED: u64 = 9203;

fn fleet_for(d: &Dataset, shards: usize, threads: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, threads, i, u, c, |_| {
        Method::CpaSvi.engine(i, u, c, SEED)
    })
}

/// A small random crowd, as in `serving_properties.rs`.
fn arbitrary_dataset(items: usize, workers: usize, labels: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut m = cpa::data::answers::AnswerMatrix::new(items, workers, labels);
    for i in 0..items {
        for u in 0..workers {
            if rng.random::<f64>() < 0.6 {
                let n = 1 + rng.random_range(0..labels.min(3));
                let mut l = LabelSet::empty(labels);
                for _ in 0..n {
                    l.insert(rng.random_range(0..labels));
                }
                m.insert(i, u, l);
            }
        }
    }
    Dataset::new("prop", m, vec![LabelSet::empty(labels); items])
}

/// A ranged request with some structure: every third item, plus a
/// duplicate of the first requested item (duplicates are allowed and
/// echoed in request order).
fn probe_items(num_items: usize) -> Vec<usize> {
    let mut items: Vec<usize> = (0..num_items).step_by(3).collect();
    if let Some(&first) = items.first() {
        items.push(first);
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_views_equal_full_recompute(
        items in 6usize..18,
        workers in 5usize..12,
        labels in 2usize..5,
        seed in 0u64..10_000,
        k_pick in 0usize..3,
        batch_size in 1usize..4,
    ) {
        let k = [1usize, 2, 4][k_pick];
        let d = arbitrary_dataset(items, workers, labels, seed);
        let mut rng = seeded(seed ^ 0x71);
        let batches = WorkerStream::new(&d, batch_size, &mut rng).into_batches();
        // One Ingest per batch with a Refit spliced in at a seed-chosen
        // position — a random mutation sequence over the protocol.
        let mut ops: Vec<FleetOp> = batches
            .iter()
            .map(|b| FleetOp::ingest_from(&d.answers, b))
            .collect();
        prop_assert!(!ops.is_empty(), "active workers always yield batches");
        ops.insert(seed as usize % (ops.len() + 1), FleetOp::Refit);

        let probe = probe_items(items);
        let mut incremental = fleet_for(&d, k, 1);
        for applied in 1..=ops.len() {
            let reply = incremental.apply(ops[applied - 1].clone());
            prop_assert!(
                !matches!(reply, FleetReply::Error { .. }),
                "mutation {} rejected", applied
            );

            // From-scratch reference: a fresh fleet replaying the prefix —
            // its view never carried anything across epochs.
            let mut scratch = fleet_for(&d, k, 1);
            scratch.replay(ops[..applied].iter().cloned());
            prop_assert_eq!(incremental.epoch(), scratch.epoch());

            // Merged cells, bit for bit.
            let merged = incremental.predict_all();
            prop_assert_eq!(&merged, &scratch.predict_all());
            let (inc_est, scr_est) = (incremental.estimate_all(), scratch.estimate_all());
            prop_assert_eq!(&inc_est.soft, &scr_est.soft);
            prop_assert_eq!(&inc_est.expected_size, &scr_est.expected_size);
            prop_assert_eq!(&inc_est.worker_weight, &scr_est.worker_weight);

            // Per-shard slabs, bit for bit (the reads above filled them).
            let inc_view = incremental.view_handle().current();
            let scr_view = scratch.view_handle().current();
            for s in 0..k {
                prop_assert_eq!(
                    &*inc_view.shard_predictions(s).expect("filled by predict_all"),
                    &*scr_view.shard_predictions(s).expect("filled by predict_all")
                );
                prop_assert_eq!(
                    &inc_view.shard_estimate(s).expect("filled").soft,
                    &scr_view.shard_estimate(s).expect("filled").soft
                );
            }

            // Ranged reads are exactly slices of the all-items forms.
            let sliced: Vec<LabelSet> = probe.iter().map(|&i| merged[i].clone()).collect();
            prop_assert_eq!(&incremental.predict_items(&probe), &sliced);
            match incremental.apply(FleetOp::PredictItems { items: probe.clone() }) {
                FleetReply::PredictedItems { items: echoed, predictions, epoch } => {
                    prop_assert_eq!(&echoed, &probe);
                    prop_assert_eq!(&predictions, &sliced);
                    prop_assert_eq!(epoch, incremental.epoch());
                }
                other => prop_assert!(false, "unexpected reply {}", other.name()),
            }
            let rows = incremental.estimate_items(&probe);
            for (&i, row) in probe.iter().zip(&rows) {
                prop_assert_eq!(&row.soft, &inc_est.soft[i]);
                prop_assert_eq!(row.expected_size, inc_est.expected_size[i]);
            }
        }
    }
}

#[test]
fn clean_shard_slabs_are_pointer_identical_across_epochs() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let d = &sim.dataset;
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    let k = 4;
    let mut fleet = fleet_for(d, k, 1);
    let router = fleet.router();

    // Drive every active worker except one held back for the probe ingest.
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(d, 8, &mut rng).into_batches();
    let held_back = *batches
        .last()
        .and_then(|b| b.workers.first())
        .expect("stream has batches");
    for b in &batches {
        let workers: Vec<usize> = b
            .workers
            .iter()
            .copied()
            .filter(|&w| w != held_back)
            .collect();
        if workers.is_empty() {
            continue;
        }
        let op = FleetOp::Ingest {
            workers: workers.clone(),
            answers: workers
                .iter()
                .flat_map(|&w| {
                    d.answers
                        .worker_answers(w)
                        .iter()
                        .map(move |(item, labels)| (*item as usize, w, labels.to_vec()))
                })
                .collect(),
        };
        assert!(matches!(fleet.apply(op), FleetReply::Ingested { .. }));
    }

    // Fill every shard's slabs (and the merged cells) at this epoch.
    fleet.predict_all();
    fleet.estimate_all();
    let before = fleet.view_handle().current();
    let slabs_before: Vec<_> = (0..k)
        .map(|s| before.shard_predictions(s).expect("filled"))
        .collect();

    // One answer by the held-back worker to item 0: the batch routes to
    // exactly one shard, so exactly that shard is dirtied.
    let dirty_shard = router.route(0);
    let reply = fleet.apply(FleetOp::Ingest {
        workers: vec![held_back],
        answers: vec![(0, held_back, vec![0])],
    });
    assert!(matches!(reply, FleetReply::Ingested { .. }), "probe ingest");

    let after = fleet.view_handle().current();
    assert_eq!(after.epoch(), before.epoch() + 1);
    for (s, slab_before) in slabs_before.iter().enumerate() {
        if s == dirty_shard {
            assert!(
                after.shard_predictions(s).is_none(),
                "dirty shard {s} slab must be dropped at publish"
            );
        } else {
            let carried = after
                .shard_predictions(s)
                .expect("clean shard slab carried forward");
            assert!(
                Arc::ptr_eq(slab_before, &carried),
                "clean shard {s} slab must carry pointer-identically"
            );
            assert!(
                Arc::ptr_eq(
                    &before.shard_estimate(s).expect("filled"),
                    &after.shard_estimate(s).expect("carried"),
                ),
                "clean shard {s} estimate slab must carry pointer-identically"
            );
        }
    }
    // Merged cells never carry — the first read refills them from the
    // slabs, recomputing only the dirty shard's.
    assert!(after.predictions().is_none());
    let merged = fleet.predict_all();
    assert_eq!(merged.len(), i);
    let refilled = fleet.view_handle().current();
    for (s, slab_before) in slabs_before.iter().enumerate() {
        let now = refilled.shard_predictions(s).expect("filled by the read");
        assert_eq!(
            Arc::ptr_eq(slab_before, &now),
            s != dirty_shard,
            "only the dirty shard's slab is recomputed"
        );
    }

    // Ranged reads bound their work the same way: an out-of-range item is
    // a protocol error, not a panic.
    match fleet.apply(FleetOp::PredictItems { items: vec![i] }) {
        FleetReply::Error { message } => assert!(message.contains("universe"), "{message}"),
        other => panic!("unexpected reply {}", other.name()),
    }
    let _ = (u, c);
}

/// Ranged reads over a real socket, both codecs: every reply is the exact
/// slice of the all-items reply at the same epoch, served from per-shard
/// row caches after the first request.
#[test]
fn ranged_reads_match_sliced_full_reads_over_the_wire() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED + 7);
    let d = &sim.dataset;
    let num_items = d.num_items();
    let mut rng = seeded(SEED + 8);
    let batches = WorkerStream::new(d, 8, &mut rng).into_batches();

    for format in [WireFormat::Json, WireFormat::Binary] {
        let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
        let addr = server.local_addr().expect("addr");
        let fleet = fleet_for(d, 4, 2);
        let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

        let mut client = FleetClient::connect_with(addr, format).expect("connect");
        assert_eq!(client.wire_format(), format, "{format:?} negotiates");
        for b in &batches {
            client
                .push_workers(&d.answers, &b.workers)
                .expect("ingest over the wire");
        }
        client.refit_all().expect("refit");

        // A ranged read at a fresh epoch (no slabs filled yet) falls
        // through to the driver and still answers correctly.
        let probe = probe_items(num_items);
        let (cold_rows, cold_epoch) = client
            .predict_items_tagged(probe.clone())
            .expect("cold ranged read");
        let (full, full_epoch) = client.predict_tagged().expect("full read");
        assert_eq!(
            cold_epoch, full_epoch,
            "{format:?}: same epoch, no mutations between"
        );
        let sliced: Vec<LabelSet> = probe.iter().map(|&i| full[i].clone()).collect();
        assert_eq!(cold_rows, sliced, "{format:?}: cold ranged ≡ sliced full");

        // Warm repeat (row caches filled): identical bytes decoded, and
        // duplicates/empty requests echo exactly.
        let (warm_rows, warm_epoch) = client
            .predict_items_tagged(probe.clone())
            .expect("warm ranged read");
        assert_eq!((warm_rows, warm_epoch), (sliced, full_epoch), "{format:?}");
        assert!(client
            .predict_items(Vec::new())
            .expect("empty request")
            .is_empty());

        let (est, est_epoch) = client.estimate_tagged().expect("full estimate");
        let (rows, rows_epoch) = client
            .estimate_items_tagged(probe.clone())
            .expect("ranged estimate");
        assert_eq!(est_epoch, rows_epoch, "{format:?}");
        for (&i, row) in probe.iter().zip(&rows) {
            assert_eq!(row.soft, est.soft[i], "{format:?}: item {i} soft row");
            assert_eq!(row.expected_size, est.expected_size[i], "{format:?}");
        }

        // Out-of-range items are a protocol rejection over the wire too.
        let err = client.predict_items(vec![num_items]).unwrap_err();
        assert!(
            matches!(err, cpa::transport::TransportError::Rejected(_)),
            "{format:?}: {err}"
        );

        client.shutdown().expect("shutdown");
        running.join().expect("server thread");
    }
}
