//! Model-based property tests for the dual-orientation CSR `AnswerMatrix`:
//! random `insert` / `remove` / `extend_bulk` interleavings against a naive
//! `BTreeMap` reference model. After every mutation the matrix must satisfy
//! its CSR invariants (`check_consistency`, module docs of
//! `cpa_data::answers`) and both orientations must agree with the model
//! exactly.

use cpa::data::answers::AnswerMatrix;
use cpa::data::labels::LabelSet;
use cpa::math::rng::seeded;
use proptest::prelude::*;
use rand::Rng;
use std::collections::BTreeMap;

type Model = BTreeMap<(usize, usize), LabelSet>;

fn random_labels<R: Rng + ?Sized>(num_labels: usize, rng: &mut R) -> LabelSet {
    let n = 1 + rng.random_range(0..num_labels.min(3));
    let mut l = LabelSet::empty(num_labels);
    for _ in 0..n {
        l.insert(rng.random_range(0..num_labels));
    }
    l
}

/// Both CSR orientations, compared entry-by-entry against the model.
fn assert_matches_model(m: &AnswerMatrix, model: &Model, step: usize) {
    assert!(
        m.check_consistency(),
        "CSR invariants broken at step {step}"
    );
    assert_eq!(m.num_answers(), model.len(), "answer count at step {step}");
    // Item orientation.
    for item in 0..m.num_items() {
        let expect: Vec<(u32, LabelSet)> = model
            .range((item, 0)..(item + 1, 0))
            .map(|(&(_, w), l)| (w as u32, l.clone()))
            .collect();
        assert_eq!(
            m.item_answers(item),
            expect.as_slice(),
            "item {item} at step {step}"
        );
    }
    // Worker orientation.
    for worker in 0..m.num_workers() {
        let mut expect: Vec<(u32, LabelSet)> = model
            .iter()
            .filter(|(&(_, w), _)| w == worker)
            .map(|(&(i, _), l)| (i as u32, l.clone()))
            .collect();
        expect.sort_by_key(|e| e.0);
        assert_eq!(
            m.worker_answers(worker),
            expect.as_slice(),
            "worker {worker} at step {step}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn csr_matches_naive_model_under_random_mutations(
        items in 1usize..10,
        workers in 1usize..8,
        labels in 2usize..6,
        seed in 0u64..10_000,
        steps in 1usize..40,
    ) {
        let mut rng = seeded(seed);
        let mut m = AnswerMatrix::new(items, workers, labels);
        let mut model: Model = BTreeMap::new();

        for step in 0..steps {
            match rng.random_range(0..4u32) {
                // Point insert (replace semantics on duplicates).
                0 | 1 => {
                    let (i, w) = (rng.random_range(0..items), rng.random_range(0..workers));
                    let l = random_labels(labels, &mut rng);
                    m.insert(i, w, l.clone());
                    model.insert((i, w), l);
                }
                // Point remove (possibly of a non-existent answer).
                2 => {
                    let (i, w) = (rng.random_range(0..items), rng.random_range(0..workers));
                    let existed = m.remove(i, w);
                    prop_assert_eq!(existed, model.remove(&(i, w)).is_some());
                }
                // Bulk merge, possibly with internal duplicates (last wins).
                _ => {
                    let n = rng.random_range(0..6usize);
                    let batch: Vec<(usize, usize, LabelSet)> = (0..n)
                        .map(|_| {
                            (
                                rng.random_range(0..items),
                                rng.random_range(0..workers),
                                random_labels(labels, &mut rng),
                            )
                        })
                        .collect();
                    m.extend_bulk(batch.clone());
                    for (i, w, l) in batch {
                        model.insert((i, w), l);
                    }
                }
            }
            assert_matches_model(&m, &model, step);
        }
    }

    #[test]
    fn extend_bulk_equals_point_insert_sequence(
        items in 1usize..8,
        workers in 1usize..8,
        labels in 2usize..5,
        seed in 0u64..10_000,
        batch_len in 0usize..30,
    ) {
        // One bulk merge must land exactly where the same triples landed as
        // point inserts (the batch may contain duplicates; last wins).
        let mut rng = seeded(seed ^ 0xb01d);
        let batch: Vec<(usize, usize, LabelSet)> = (0..batch_len)
            .map(|_| {
                (
                    rng.random_range(0..items),
                    rng.random_range(0..workers),
                    random_labels(labels, &mut rng),
                )
            })
            .collect();
        // Start both from the same random base matrix.
        let mut bulk = AnswerMatrix::new(items, workers, labels);
        for _ in 0..rng.random_range(0..10usize) {
            bulk.insert(
                rng.random_range(0..items),
                rng.random_range(0..workers),
                random_labels(labels, &mut rng),
            );
        }
        let mut point = bulk.clone();
        bulk.extend_bulk(batch.clone());
        for (i, w, l) in batch {
            point.insert(i, w, l);
        }
        prop_assert!(bulk.check_consistency());
        prop_assert_eq!(bulk.num_answers(), point.num_answers());
        for i in 0..items {
            prop_assert_eq!(bulk.item_answers(i), point.item_answers(i));
        }
        for w in 0..workers {
            prop_assert_eq!(bulk.worker_answers(w), point.worker_answers(w));
        }
    }
}
