//! Full-fit determinism across thread counts.
//!
//! The parallel schedules (MAP phase over workers, the chunked λ target, the
//! chunked truth-estimation passes) are designed so the *thread count never
//! changes the floating-point result*: work is split at thread-count-
//! independent boundaries and merged in a fixed order. This test locks that
//! contract at the full-pipeline level — an entire `OnlineCpa` stream fit
//! must be **bit-identical** (not merely close) at 1, 2, and 8 threads.

use cpa::core::truth::KnownLabels;
use cpa::core::{CpaConfig, OnlineCpa};
use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::WorkerStream;
use cpa::math::rng::seeded;

/// Runs a full online fit and fingerprints every learned parameter matrix
/// (exact bits) together with the final predictions.
fn fit_fingerprint(threads: usize) -> (Vec<u64>, Vec<LabelSet>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.08), 1797);
    let cfg = CpaConfig::default()
        .with_truncation(8, 10)
        .with_seed(1797)
        .with_threads(threads);
    let mut online = OnlineCpa::new(
        cfg,
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        0.875,
    );
    online.set_known(KnownLabels::from_pairs(
        sim.dataset.num_items(),
        [(0, sim.dataset.truth[0].clone())],
    ));
    let mut rng = seeded(1798);
    let stream = WorkerStream::new(&sim.dataset, 10, &mut rng);
    for batch in stream.iter() {
        online.partial_fit(&sim.dataset.answers, batch);
    }
    let p = online.params();
    let bits: Vec<u64> = p
        .kappa
        .as_slice()
        .iter()
        .chain(p.phi.as_slice())
        .chain(p.mu.as_slice())
        .chain(p.lambda.as_slice())
        .chain(p.zeta.as_slice())
        .map(|x| x.to_bits())
        .collect();
    (bits, online.predict_all())
}

#[test]
fn online_fit_is_bit_identical_across_thread_counts() {
    let (baseline_bits, baseline_preds) = fit_fingerprint(1);
    assert!(!baseline_bits.is_empty());

    let mut thread_counts = vec![2usize, 8];
    // The CI matrix leg exports CPA_TEST_THREADS; fold it in so the exact
    // configuration exercised there is also pinned to the serial baseline.
    if let Some(n) = std::env::var("CPA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 1)
    {
        if !thread_counts.contains(&n) {
            thread_counts.push(n);
        }
    }

    for threads in thread_counts {
        let (bits, preds) = fit_fingerprint(threads);
        assert_eq!(
            bits, baseline_bits,
            "parameters diverged from the serial fit at {threads} threads"
        );
        assert_eq!(
            preds, baseline_preds,
            "predictions diverged from the serial fit at {threads} threads"
        );
    }
}
