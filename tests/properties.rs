//! Cross-crate property-based tests: invariants that must hold for *any*
//! randomly generated crowd, not just the paper profiles.

use cpa::prelude::*;
use proptest::prelude::*;
use rand::Rng;

/// Generates a random small answer matrix with consistent truth.
fn arbitrary_crowd(
    items: usize,
    workers: usize,
    labels: usize,
    seed: u64,
) -> (AnswerMatrix, Vec<LabelSet>) {
    let mut rng = cpa::math::rng::seeded(seed);
    let mut truth = Vec::with_capacity(items);
    for _ in 0..items {
        let n = 1 + rng.random_range(0..labels.min(3));
        let mut t = LabelSet::empty(labels);
        for _ in 0..n {
            t.insert(rng.random_range(0..labels));
        }
        truth.push(t);
    }
    let mut m = AnswerMatrix::new(items, workers, labels);
    for (i, truth_i) in truth.iter().enumerate() {
        for u in 0..workers {
            if rng.random::<f64>() < 0.7 {
                // Noisy copy of the truth.
                let mut a = LabelSet::empty(labels);
                for c in truth_i.iter() {
                    if rng.random::<f64>() < 0.8 {
                        a.insert(c);
                    }
                }
                if rng.random::<f64>() < 0.3 {
                    a.insert(rng.random_range(0..labels));
                }
                if a.is_empty() {
                    a.insert(rng.random_range(0..labels));
                }
                m.insert(i, u, a);
            }
        }
    }
    (m, truth)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cpa_predictions_always_well_formed(
        items in 2usize..12,
        workers in 2usize..10,
        labels in 2usize..8,
        seed in 0u64..1000,
    ) {
        let (answers, _) = arbitrary_crowd(items, workers, labels, seed);
        let fitted = CpaModel::new(
            CpaConfig::default().with_truncation(4, 5).with_seed(seed),
        )
        .fit(&answers);
        let preds = fitted.predict_all(&answers);
        prop_assert_eq!(preds.len(), items);
        for (i, p) in preds.iter().enumerate() {
            prop_assert!(p.universe() == labels);
            // Non-empty whenever the item has any answers.
            if !answers.item_answers(i).is_empty() {
                prop_assert!(!p.is_empty(), "empty prediction for answered item {}", i);
            }
        }
    }

    #[test]
    fn aggregators_agree_on_unanimous_crowds(
        items in 1usize..8,
        workers in 3usize..8,
        labels in 2usize..6,
        seed in 0u64..1000,
    ) {
        // When every worker gives exactly the true labels, every method must
        // return the truth.
        let mut rng = cpa::math::rng::seeded(seed);
        let mut truth = Vec::new();
        let mut m = AnswerMatrix::new(items, workers, labels);
        for i in 0..items {
            let mut t = LabelSet::empty(labels);
            t.insert(rng.random_range(0..labels));
            if rng.random::<f64>() < 0.5 {
                t.insert(rng.random_range(0..labels));
            }
            for u in 0..workers {
                m.insert(i, u, t.clone());
            }
            truth.push(t);
        }
        let mv = MajorityVoting::new().aggregate(&m);
        let em = DawidSkene::new().aggregate(&m);
        prop_assert_eq!(&mv, &truth);
        prop_assert_eq!(&em, &truth);
        let cpa = CpaModel::new(CpaConfig::default().with_truncation(3, 4).with_seed(seed))
            .fit(&m)
            .predict_all(&m);
        let f1 = evaluate(&cpa, &truth).f1;
        prop_assert!(f1 > 0.9, "CPA f1 {} on unanimous crowd", f1);
    }

    #[test]
    fn metrics_are_permutation_invariant(
        seed in 0u64..500,
    ) {
        let (answers, truth) = arbitrary_crowd(8, 6, 5, seed);
        let preds = MajorityVoting::new().aggregate(&answers);
        let m1 = evaluate(&preds, &truth);
        // Permute items consistently.
        let perm: Vec<usize> = (0..8).rev().collect();
        let preds_p: Vec<LabelSet> = perm.iter().map(|&i| preds[i].clone()).collect();
        let truth_p: Vec<LabelSet> = perm.iter().map(|&i| truth[i].clone()).collect();
        let m2 = evaluate(&preds_p, &truth_p);
        prop_assert!((m1.precision - m2.precision).abs() < 1e-12);
        prop_assert!((m1.recall - m2.recall).abs() < 1e-12);
    }

    #[test]
    fn online_ingestion_never_panics_and_tracks_answers(
        items in 2usize..10,
        workers in 2usize..8,
        labels in 2usize..6,
        seed in 0u64..500,
    ) {
        let (answers, _) = arbitrary_crowd(items, workers, labels, seed);
        let dataset = Dataset::new(
            "prop",
            answers.clone(),
            vec![LabelSet::empty(labels); items],
        );
        let mut online = OnlineCpa::new(
            CpaConfig::default().with_truncation(3, 4).with_seed(seed),
            items,
            workers,
            labels,
            0.875,
        );
        let mut rng = cpa::math::rng::seeded(seed ^ 1);
        let stream = WorkerStream::new(&dataset, 2, &mut rng);
        for batch in stream.iter() {
            online.partial_fit(&answers, batch);
        }
        prop_assert_eq!(online.seen_answers().num_answers(), answers.num_answers());
        let preds = online.predict_all();
        prop_assert_eq!(preds.len(), items);
    }
}
