//! Loopback transport round trip: the serving tier's determinism contract
//! extended across a real TCP socket.
//!
//! Contract 1 (wire fidelity): a server with **two concurrent clients**
//! running the full ingest/refit/predict/snapshot cycle produces
//! predictions and a manifest **bit-identical** to the in-process fleet on
//! the same op stream, at K ∈ {1, 4} shards. The two clients interleave
//! their connections live but hand the op order back and forth with a
//! token, so the global op order is deterministic — concurrency in the
//! transport, determinism in the protocol.
//!
//! Contract 2 (op-log): the server's recorded op-log, serialized to JSONL
//! and parsed back, replays against a fresh fleet to a snapshot
//! **byte-for-byte identical** to the live run's.
//!
//! Contract 3 (hardening): clients that disconnect mid-frame, send garbage
//! frames, or violate the arrival contract get framed errors (with the
//! offending worker named) or dropped connections — and the server keeps
//! serving the next client.

use cpa::core::engine::DynEngine;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{WorkerBatch, WorkerStream};
use cpa::eval::runner::Method;
use cpa::math::rng::seeded;
use cpa::serve::{ops_from_jsonl, ops_to_jsonl, Fleet, FleetOp};
use cpa::transport::{FleetClient, FleetServer, ServeOutcome, ServerConfig};
use std::sync::mpsc::channel;

const SEED: u64 = 7719;

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    assert!(batches.len() >= 4, "need batches for both clients");
    (sim.dataset, batches)
}

fn fleet_for(d: &cpa::data::dataset::Dataset, shards: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, 2, i, u, c, |_| Method::CpaSvi.engine(i, u, c, SEED))
}

fn ingest_ops(d: &cpa::data::dataset::Dataset, batches: &[WorkerBatch]) -> Vec<FleetOp> {
    batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .collect()
}

/// Two live connections, one deterministic global op order: the clients
/// alternate ingest ops, handing a token back and forth; then client A
/// refits and predicts, client B predicts, snapshots, and shuts down.
fn serve_two_clients(
    fleet: Fleet,
    ops: Vec<FleetOp>,
) -> (
    Vec<cpa::data::labels::LabelSet>,
    Vec<cpa::data::labels::LabelSet>,
    cpa::serve::FleetManifest,
    ServeOutcome,
) {
    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_clients: 2,
            record_ops: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

    // Alternation: A owns even-indexed ops, B odd-indexed. Each completed
    // ingest hands the turn token to the other client; main seeds A and
    // then sequences the read phase once both ingest loops report done.
    let (to_a, a_turn) = channel::<()>();
    let (to_b, b_turn) = channel::<()>();
    let (done_tx, done_rx) = channel::<()>();
    let (phase_a_tx, phase_a) = channel::<()>();
    let (phase_b_tx, phase_b) = channel::<()>();
    let ops_a: Vec<FleetOp> = ops.iter().step_by(2).cloned().collect();
    let ops_b: Vec<FleetOp> = ops.iter().skip(1).step_by(2).cloned().collect();

    let client_a = std::thread::spawn({
        let to_b = to_b.clone();
        let done_tx = done_tx.clone();
        move || {
            let mut client = FleetClient::connect(addr).expect("client A connects");
            for op in ops_a {
                a_turn.recv().expect("turn token to A");
                let FleetOp::Ingest { workers, answers } = op else {
                    unreachable!()
                };
                client.ingest(workers, answers).expect("A ingests");
                to_b.send(()).ok();
            }
            done_tx.send(()).expect("A reports its ingests done");
            phase_a.recv().expect("read phase for A");
            client.refit_all().expect("A refits");
            let preds = client.predict_all().expect("A predicts");
            done_tx.send(()).expect("A reports the refit done");
            preds
        }
    });
    let seed_a = to_a.clone();
    let client_b = std::thread::spawn(move || {
        let mut client = FleetClient::connect(addr).expect("client B connects");
        for op in ops_b {
            b_turn.recv().expect("turn token to B");
            let FleetOp::Ingest { workers, answers } = op else {
                unreachable!()
            };
            client.ingest(workers, answers).expect("B ingests");
            to_a.send(()).ok();
        }
        done_tx.send(()).expect("B reports its ingests done");
        phase_b.recv().expect("read phase for B");
        let preds = client.predict_all().expect("B predicts");
        let manifest = client.snapshot().expect("B snapshots");
        client.shutdown().expect("B shuts the server down");
        (preds, manifest)
    });
    seed_a
        .send(())
        .expect("seed the alternation: A's first turn");
    done_rx.recv().expect("one ingest loop done");
    done_rx.recv().expect("both ingest loops done");
    phase_a_tx.send(()).expect("A refits and predicts first");
    done_rx.recv().expect("A's read phase done");
    phase_b_tx
        .send(())
        .expect("then B reads, snapshots, shuts down");
    let preds_a = client_a.join().expect("client A thread");
    let (preds_b, manifest) = client_b.join().expect("client B thread");
    let outcome = running.join().expect("server thread");
    (preds_a, preds_b, manifest, outcome)
}

#[test]
fn two_concurrent_clients_are_bit_identical_to_the_in_process_fleet() {
    let (d, batches) = fixture();
    for k in [1usize, 4] {
        let ops = ingest_ops(&d, &batches);

        // In-process reference: the same global op order, no sockets.
        let mut reference = fleet_for(&d, k);
        for op in ops.clone() {
            let reply = reference.apply(op);
            assert_eq!(reply.name(), "Ingested", "K={k}");
        }
        reference.refit_all();

        let (preds_a, preds_b, manifest, outcome) = serve_two_clients(fleet_for(&d, k), ops);

        let want = reference.predict_all();
        assert_eq!(preds_a, want, "K={k}: client A diverged over loopback");
        assert_eq!(preds_b, want, "K={k}: client B diverged over loopback");
        assert_eq!(
            manifest.to_json(),
            reference.snapshot().to_json(),
            "K={k}: wire manifest diverged from the in-process snapshot"
        );

        // The live fleet handed back by the server equals the reference too.
        assert_eq!(outcome.fleet.predict_all(), want, "K={k}");

        // Contract 2: record → JSONL → parse → replay on a fresh fleet
        // reproduces the live snapshot byte for byte.
        let jsonl = ops_to_jsonl(&outcome.op_log);
        let replayed_ops = ops_from_jsonl(&jsonl).expect("recorded op-log parses");
        assert_eq!(replayed_ops.len(), outcome.op_log.len());
        let mut replayed = fleet_for(&d, k);
        replayed.replay(replayed_ops);
        assert_eq!(
            replayed.snapshot().to_json(),
            outcome.fleet.snapshot().to_json(),
            "K={k}: op-log replay diverged from the live run"
        );
    }
}

#[test]
fn contract_violations_come_back_as_framed_errors_naming_the_worker() {
    let (d, batches) = fixture();
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let fleet = fleet_for(&d, 2);
    let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

    let mut client = FleetClient::connect(addr).expect("connect");
    let FleetOp::Ingest { workers, answers } = FleetOp::ingest_from(&d.answers, &batches[0]) else {
        unreachable!()
    };
    let first_worker = workers[0];
    client
        .ingest(workers.clone(), answers.clone())
        .expect("first arrival is fine");
    // The same workers again: rejected with the offending worker named,
    // and the fleet is untouched.
    let err = client.ingest(workers, answers).expect_err("re-arrival");
    assert!(
        err.to_string().contains(&format!("worker {first_worker}")),
        "{err}"
    );
    // An out-of-range label is rejected before anything is mutated.
    let err = client
        .ingest(vec![0], vec![(0, 0, vec![d.num_labels() + 5])])
        .expect_err("bad label");
    assert!(err.to_string().contains("label"), "{err}");
    // The connection is still healthy and the server still serves.
    client.refit_all().expect("refit after rejections");
    let preds = client.predict_all().expect("predict");
    assert_eq!(preds.len(), d.num_items());
    // Ranged reads ride the same connection: a slice of the full read,
    // and an out-of-universe item is a framed rejection, not a hang.
    let probe = vec![0usize, 3, 3, d.num_items() - 1];
    let ranged = client.predict_items(probe.clone()).expect("ranged predict");
    let sliced: Vec<_> = probe.iter().map(|&i| preds[i].clone()).collect();
    assert_eq!(ranged, sliced, "ranged read diverged from the full read");
    let err = client
        .predict_items(vec![d.num_items()])
        .expect_err("out-of-universe item");
    assert!(err.to_string().contains("universe"), "{err}");
    client.shutdown().expect("shutdown");
    let outcome = running.join().expect("server joins");
    assert_eq!(
        outcome.fleet.batches_ingested(),
        1,
        "rejections mutated nothing"
    );
}

#[test]
fn truncated_and_garbage_frames_do_not_kill_the_server() {
    use std::io::{Read, Write};
    let (d, _) = fixture();
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let fleet = fleet_for(&d, 1);
    let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

    // A client that dies mid-frame: half a length prefix, then gone.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&[0x00, 0x00]).expect("partial prefix");
    }
    // A client that dies mid-payload: the prefix promises 100 bytes,
    // 3 arrive.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&100u32.to_be_bytes()).expect("prefix");
        raw.write_all(b"abc").expect("partial payload");
    }
    // A complete frame that is not an op: answered with a framed error,
    // then the connection is dropped.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        let garbage = b"this is not an op";
        raw.write_all(&(garbage.len() as u32).to_be_bytes())
            .expect("prefix");
        raw.write_all(garbage).expect("payload");
        let mut prefix = [0u8; 4];
        raw.read_exact(&mut prefix)
            .expect("framed error comes back");
        let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
        raw.read_exact(&mut payload).expect("error payload");
        let text = String::from_utf8(payload).expect("utf8 error frame");
        assert!(text.contains("Error"), "{text}");
        // ...and the stream ends there: the server dropped the connection.
        assert_eq!(raw.read(&mut [0u8; 1]).expect("clean close"), 0);
    }
    // After all three abuses, a healthy client is served normally.
    let mut client = FleetClient::connect(addr).expect("healthy connect");
    client
        .ingest(vec![0], vec![(0, 0, vec![0])])
        .expect("healthy ingest");
    client.refit_all().expect("healthy refit");
    client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn drive_equals_the_same_ops_replayed() {
    // The legacy drive() surface and raw op replay are the same interpreter:
    // identical snapshots, including arrival state.
    let (d, batches) = fixture();
    let mut driven = fleet_for(&d, 4);
    driven.drive(&mut cpa::data::stream::MemorySource::new(
        &d.answers,
        batches.clone(),
    ));

    let mut replayed = fleet_for(&d, 4);
    let mut ops = ingest_ops(&d, &batches);
    ops.push(FleetOp::Refit);
    let replies = replayed.replay(ops);
    assert!(replies.iter().all(|r| r.name() != "Error"));
    assert_eq!(replayed.snapshot().to_json(), driven.snapshot().to_json());
    assert_eq!(replayed.batches_ingested(), batches.len());
}

/// A restore hook is required for Restore ops; without one they are
/// rejected with a framed error, with one they replace the fleet.
#[test]
fn restore_over_the_wire_requires_and_uses_the_hook() {
    let (d, batches) = fixture();
    let mut donor = fleet_for(&d, 2);
    donor.drive(&mut cpa::data::stream::MemorySource::new(
        &d.answers,
        batches.clone(),
    ));
    let manifest = donor.snapshot();

    // No hook installed: rejected.
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let running = std::thread::spawn({
        let fleet = fleet_for(&d, 2);
        move || server.serve(fleet).expect("serve")
    });
    let mut client = FleetClient::connect(addr).expect("connect");
    let err = client
        .restore(manifest.clone())
        .expect_err("no hook installed");
    assert!(err.to_string().contains("restore hook"), "{err}");
    client.shutdown().expect("shutdown");
    running.join().expect("join");

    // Hook installed: the served fleet becomes the donor, bit-identically.
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let running = std::thread::spawn({
        let fleet = fleet_for(&d, 2).with_restore_hook(cpa::eval::runner::restore_engine);
        move || server.serve(fleet).expect("serve")
    });
    let mut client = FleetClient::connect(addr).expect("connect");
    client.restore(manifest).expect("restore through the hook");
    let preds = client.predict_all().expect("predict");
    assert_eq!(preds, donor.predict_all());
    client.shutdown().expect("shutdown");
    running.join().expect("join");
}

#[allow(dead_code)]
fn assert_engine_is_send(engine: DynEngine) -> DynEngine {
    engine
}
