//! Workspace smoke test: the quick-start from `src/lib.rs` as a real test.
//! Exercises the facade `prelude` end-to-end — simulate a profile, fit the
//! CPA model, and compare against majority voting — so a broken re-export or
//! a regression anywhere in the simulate → fit → predict → evaluate pipeline
//! fails fast.

use cpa::prelude::*;
// Resolution check for the prelude's free functions (generic, so they can't
// be named as values without type annotations below).
#[allow(unused_imports)]
use cpa::prelude::{inject_dependencies as _, inject_spammers as _, sparsify as _};

#[test]
fn quickstart_pipeline_runs_end_to_end() {
    // Simulate a small crowd over the paper's movie-dataset profile.
    let profile = DatasetProfile::movie().scaled(0.05);
    let sim = simulate(&profile, 42);
    assert!(sim.dataset.num_items() > 0);
    assert!(sim.dataset.answers.num_answers() > 0);

    // Aggregate with CPA and compare against majority voting.
    let fitted = CpaModel::new(CpaConfig::default()).fit(&sim.dataset.answers);
    let cpa = fitted.predict_all(&sim.dataset.answers);
    let mv = MajorityVoting::new().aggregate(&sim.dataset.answers);
    assert_eq!(cpa.len(), sim.dataset.num_items());
    assert_eq!(mv.len(), sim.dataset.num_items());

    let m_cpa = evaluate(&cpa, &sim.dataset.truth);
    let m_mv = evaluate(&mv, &sim.dataset.truth);
    for m in [&m_cpa, &m_mv] {
        assert!(
            (0.0..=1.0).contains(&m.precision),
            "precision {}",
            m.precision
        );
        assert!((0.0..=1.0).contains(&m.recall), "recall {}", m.recall);
        assert!((0.0..=1.0).contains(&m.f1), "f1 {}", m.f1);
    }

    // The paper's headline claim at smoke-test scale: CPA should at least be
    // competitive with majority voting on its own simulated profiles.
    assert!(
        m_cpa.f1 >= m_mv.f1 - 0.05,
        "CPA f1 {} fell behind MV f1 {}",
        m_cpa.f1,
        m_mv.f1
    );
}

#[test]
fn prelude_covers_the_advertised_surface() {
    // Compile-time re-export check for the names the facade promises.
    fn assert_exists<T>() {}
    assert_exists::<CpaConfig>();
    assert_exists::<CpaModel>();
    assert_exists::<FittedCpa>();
    assert_exists::<OnlineCpa>();
    assert_exists::<PredictionMode>();
    assert_exists::<KnownLabels>();
    assert_exists::<AnswerMatrix>();
    assert_exists::<Dataset>();
    assert_exists::<DatasetProfile>();
    assert_exists::<LabelSet>();
    assert_exists::<SimulatedDataset>();
    assert_exists::<WorkerStream>();
    assert_exists::<WorkerMix>();
    assert_exists::<WorkerType>();
    assert_exists::<PrMetrics>();
    assert_exists::<MajorityVoting>();
    assert_exists::<DawidSkene>();
    assert_exists::<Bcc>();
    assert_exists::<CommunityBcc>();
}
