//! End-to-end integration tests spanning the whole workspace: data
//! simulation → inference → prediction → evaluation, covering the paper's
//! headline claims at miniature scale.

use cpa::prelude::*;

fn f1_of(preds: &[LabelSet], truth: &[LabelSet]) -> f64 {
    evaluate(preds, truth).f1
}

#[test]
fn cpa_beats_majority_voting_on_correlated_data() {
    // Paper Table 4, miniature: CPA > MV on the strongly correlated image
    // profile across seeds.
    let profile = DatasetProfile::image().scaled(0.06);
    let mut wins = 0;
    for seed in [1u64, 2, 3] {
        let sim = simulate(&profile, seed);
        let mv = MajorityVoting::new().aggregate(&sim.dataset.answers);
        let cpa = CpaModel::new(CpaConfig::default().with_seed(seed))
            .fit(&sim.dataset.answers)
            .predict_all(&sim.dataset.answers);
        if f1_of(&cpa, &sim.dataset.truth) > f1_of(&mv, &sim.dataset.truth) {
            wins += 1;
        }
    }
    assert!(wins >= 2, "CPA beat MV on only {wins}/3 seeds");
}

#[test]
fn cpa_robust_to_spammer_injection() {
    // Paper Fig. 4: CPA's accuracy barely moves when 40% of answers are spam.
    let profile = DatasetProfile::image().scaled(0.06);
    let sim = simulate(&profile, 9);
    let mut rng = cpa::math::rng::seeded(10);
    let (spammed, _) = inject_spammers(&sim.dataset, 0.4, &sim.affinity, &mut rng);

    let clean = CpaModel::new(CpaConfig::default().with_seed(9))
        .fit(&sim.dataset.answers)
        .predict_all(&sim.dataset.answers);
    let noisy = CpaModel::new(CpaConfig::default().with_seed(9))
        .fit(&spammed.answers)
        .predict_all(&spammed.answers);

    let f_clean = f1_of(&clean, &sim.dataset.truth);
    let f_noisy = f1_of(&noisy, &spammed.truth);
    assert!(
        f_noisy > 0.8 * f_clean,
        "40% spam dropped F1 from {f_clean} to {f_noisy}"
    );
}

#[test]
fn cpa_degrades_gracefully_under_sparsity() {
    // Paper Fig. 3: at 50% sparsity CPA retains most of its accuracy.
    let profile = DatasetProfile::image().scaled(0.08);
    let sim = simulate(&profile, 17);
    let mut rng = cpa::math::rng::seeded(18);
    let sparse = sparsify(&sim.dataset, 0.5, &mut rng);

    let full = CpaModel::new(CpaConfig::default().with_seed(17))
        .fit(&sim.dataset.answers)
        .predict_all(&sim.dataset.answers);
    let half = CpaModel::new(CpaConfig::default().with_seed(17))
        .fit(&sparse.answers)
        .predict_all(&sparse.answers);

    let f_full = f1_of(&full, &sim.dataset.truth);
    let f_half = f1_of(&half, &sparse.truth);
    assert!(
        f_half > 0.75 * f_full,
        "50% sparsity dropped F1 from {f_full} to {f_half}"
    );
}

#[test]
fn online_and_offline_agree_at_full_arrival() {
    // Paper Table 5: online trails offline by a bounded margin.
    let profile = DatasetProfile::movie().scaled(0.08);
    let sim = simulate(&profile, 31);
    let mut online = OnlineCpa::new(
        CpaConfig::default().with_seed(31),
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        0.875,
    );
    let mut rng = cpa::math::rng::seeded(32);
    let stream = WorkerStream::new(&sim.dataset, 10, &mut rng);
    for batch in stream.iter() {
        online.partial_fit(&sim.dataset.answers, batch);
    }
    let offline = CpaModel::new(CpaConfig::default().with_seed(31))
        .fit(&sim.dataset.answers)
        .predict_all(&sim.dataset.answers);

    let f_on = f1_of(&online.predict_all(), &sim.dataset.truth);
    let f_off = f1_of(&offline, &sim.dataset.truth);
    assert!(
        f_on > f_off - 0.2,
        "online F1 {f_on} too far below offline {f_off}"
    );
}

#[test]
fn spammers_receive_low_inferred_weights() {
    // The worker-community machinery must identify planted spammers without
    // ground truth (paper §5.2 "Robustness to Spammers").
    let profile = DatasetProfile::image().scaled(0.08);
    let sim = simulate(&profile, 41);
    let fitted = CpaModel::new(CpaConfig::default().with_seed(41)).fit(&sim.dataset.answers);
    let weights = fitted.worker_weights();

    let mean_for = |pred: &dyn Fn(WorkerType) -> bool| -> f64 {
        let v: Vec<f64> = sim
            .worker_types
            .iter()
            .enumerate()
            .filter(|(u, t)| pred(**t) && !sim.dataset.answers.worker_answers(*u).is_empty())
            .map(|(u, _)| weights[u])
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    let honest = mean_for(&|t: WorkerType| t == WorkerType::Reliable);
    let spam = mean_for(&|t: WorkerType| t.is_spammer());
    assert!(
        honest > 3.0 * spam,
        "reliable mean weight {honest} vs spammer {spam}"
    );
}

#[test]
fn semi_supervision_anchors_known_items() {
    let profile = DatasetProfile::topic().scaled(0.06);
    let sim = simulate(&profile, 51);
    let known = KnownLabels::from_pairs(
        sim.dataset.num_items(),
        (0..sim.dataset.num_items())
            .step_by(4)
            .map(|i| (i, sim.dataset.truth[i].clone())),
    );
    let fitted = CpaModel::new(CpaConfig::default().with_seed(51))
        .fit_semi_supervised(&sim.dataset.answers, &known);
    let preds = fitted.predict_all(&sim.dataset.answers);
    // Known items should be recovered near-perfectly.
    let mut f1 = 0.0;
    let mut n = 0;
    for i in (0..sim.dataset.num_items()).step_by(4) {
        let m = evaluate(
            std::slice::from_ref(&preds[i]),
            std::slice::from_ref(&sim.dataset.truth[i]),
        );
        f1 += m.f1;
        n += 1;
    }
    f1 /= n as f64;
    assert!(f1 > 0.8, "known items only reach F1 {f1}");
}

#[test]
fn dataset_roundtrips_through_json() {
    let profile = DatasetProfile::movie().scaled(0.04);
    let sim = simulate(&profile, 61);
    let json = sim.dataset.to_json();
    let loaded = Dataset::from_json(&json).expect("roundtrip");
    assert_eq!(loaded.num_items(), sim.dataset.num_items());
    // Aggregation on the roundtripped dataset is identical.
    let a = MajorityVoting::new().aggregate(&sim.dataset.answers);
    let b = MajorityVoting::new().aggregate(&loaded.answers);
    assert_eq!(a, b);
}

#[test]
fn full_pipeline_on_every_paper_profile() {
    // Smoke coverage: all five Table 3 profiles run end-to-end at tiny scale.
    for profile in DatasetProfile::all_five() {
        let scaled = profile.clone().scaled(0.03);
        let sim = simulate(&scaled, 71);
        let fitted = CpaModel::new(CpaConfig::default().with_truncation(8, 10).with_seed(71))
            .fit(&sim.dataset.answers);
        let preds = fitted.predict_all(&sim.dataset.answers);
        let m = evaluate(&preds, &sim.dataset.truth);
        assert!(
            m.f1 > 0.25,
            "{}: implausibly low F1 {} at tiny scale",
            profile.name,
            m.f1
        );
    }
}
