//! Epoch-delta push subscriptions, end to end.
//!
//! Contract 1 (fidelity): a `SubscribeReads` cache maintained purely by
//! applying pushed delta frames serves, at **every** epoch the writer
//! acked, rows identical to poll-refetching over the same codec at that
//! epoch — at K ∈ {1, 2, 4}, full and item-ranged subscriptions, both wire
//! codecs, both read kinds. Deterministic grids pin the required corners;
//! a property samples random item sets over the same space.
//!
//! Contract 2 (delta minimality): after an ingest routed entirely to one
//! of K = 4 shards, the pushed delta carries rows for exactly that shard's
//! items — the other three shards ship nothing.
//!
//! Contract 3 (slot exhaustion): subscriptions (op-stream or read-delta)
//! hold at most `max_clients - 1` handler slots; one past the cap is
//! refused with a readable framed error, the refused connection stays
//! usable, and a dropped subscription's slot is reclaimed.
//!
//! Contract 4 (stream endings): server wind-down is a clean EOF
//! (`Ok(None)`, cache still readable at its last epoch); a server that
//! goes silent without closing surfaces as `TimedOut` via the read
//! deadline instead of hanging the subscriber.

use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{WorkerBatch, WorkerStream};
use cpa::eval::runner::Method;
use cpa::math::rng::seeded;
use cpa::serve::{Fleet, FleetOp, FleetReply, ReadKind, ShardIndex, ShardRouter};
use cpa::transport::{
    ClientConfig, FleetClient, FleetServer, ReadSubscription, ServerConfig, TransportError,
    WireFormat,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const SEED: u64 = 10_104;

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    (sim.dataset, batches)
}

fn fleet_for(d: &cpa::data::dataset::Dataset, shards: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, 2, i, u, c, |_| Method::CpaSvi.engine(i, u, c, SEED))
}

/// The canonical mutation stream: one ingest per arrival batch with a
/// refit spliced into the middle.
fn mutation_ops(d: &cpa::data::dataset::Dataset, batches: &[WorkerBatch]) -> Vec<FleetOp> {
    let mut ops: Vec<FleetOp> = batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .collect();
    ops.insert(ops.len() / 2, FleetOp::Refit);
    ops
}

fn spawn_server(
    fleet: Fleet,
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<cpa::transport::ServeOutcome>,
) {
    let server = FleetServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve(fleet).expect("serve"));
    (addr, handle)
}

/// One canonical rendering of the cache's rows, for comparison against the
/// same rendering of a poll refetch.
fn cache_rows(sub: &ReadSubscription) -> String {
    let cache = sub.cache();
    match cache.kind() {
        ReadKind::Predictions => {
            serde_json::to_string(&cache.predictions().expect("prediction cache").to_vec())
                .expect("rows serialize")
        }
        ReadKind::Estimate => {
            serde_json::to_string(&cache.estimates().expect("estimate cache").to_vec())
                .expect("rows serialize")
        }
    }
}

/// Poll-refetches the subscribed rows over `client`'s connection, returning
/// the same canonical rendering plus the epoch tag the reply carried.
fn poll_rows(client: &mut FleetClient, kind: ReadKind, items: &[usize]) -> (String, u64) {
    match kind {
        ReadKind::Predictions => {
            let (rows, epoch) = client
                .predict_items_tagged(items.to_vec())
                .expect("poll refetch");
            (serde_json::to_string(&rows).expect("rows serialize"), epoch)
        }
        ReadKind::Estimate => {
            let (rows, epoch) = client
                .estimate_items_tagged(items.to_vec())
                .expect("poll refetch");
            (serde_json::to_string(&rows).expect("rows serialize"), epoch)
        }
    }
}

/// Contract 1's engine: subscribe (full universe when `watch` is `None`),
/// run the canonical mutation stream, and assert the delta-maintained
/// cache matched a poll refetch at the bootstrap and at every acked epoch,
/// through the clean wind-down EOF.
fn push_matches_poll(shards: usize, format: WireFormat, kind: ReadKind, watch: Option<Vec<usize>>) {
    let (d, batches) = fixture();
    let (addr, running) = spawn_server(fleet_for(&d, shards), ServerConfig::default());

    let sub = FleetClient::connect_with(addr, format)
        .expect("subscriber connects")
        .subscribe_reads(kind, watch.clone())
        .expect("subscription acked");
    assert_eq!(sub.epoch(), 0, "bootstrap at genesis");
    let items = sub.cache().items().to_vec();
    match &watch {
        Some(w) => {
            let mut normalized = w.clone();
            normalized.sort_unstable();
            normalized.dedup();
            assert_eq!(items, normalized, "bootstrap echoes the normalized range");
        }
        None => assert_eq!(items.len(), d.num_items(), "full scope pins the universe"),
    }
    let bootstrap = cache_rows(&sub);

    // Tail the push stream on its own thread, snapshotting the cache after
    // every applied frame. The loop ends at the wind-down EOF.
    let tail = std::thread::spawn(move || {
        let mut sub = sub;
        let mut seen: BTreeMap<u64, String> = BTreeMap::new();
        while let Some(delta) = sub.next_delta().expect("delta frame") {
            seen.insert(delta.applied.epoch, cache_rows(&sub));
        }
        seen
    });

    let mut writer = FleetClient::connect_with(addr, format).expect("writer connects");
    let (genesis, tag) = poll_rows(&mut writer, kind, &items);
    assert_eq!(tag, 0, "nothing mutated yet");
    assert_eq!(
        bootstrap, genesis,
        "K={shards} {format:?} {kind:?}: bootstrap diverged from a genesis poll"
    );

    // The writer is the only mutator, so a refetch right after each ack
    // reads exactly that acked epoch — the poll-path ground truth the
    // pushed cache must reproduce.
    let mut expected: BTreeMap<u64, String> = BTreeMap::new();
    for op in mutation_ops(&d, &batches) {
        let epoch = match op {
            FleetOp::Ingest { workers, answers } => {
                writer.ingest_tagged(workers, answers).expect("ingest").1
            }
            FleetOp::Refit => writer.refit_tagged().expect("refit"),
            _ => unreachable!(),
        };
        let (rows, tag) = poll_rows(&mut writer, kind, &items);
        assert_eq!(tag, epoch, "refetch reads the acked epoch");
        expected.insert(epoch, rows);
    }
    writer.shutdown().expect("shutdown");
    running.join().expect("server joins");

    let seen = tail.join().expect("tail joins");
    assert_eq!(
        seen.keys().collect::<Vec<_>>(),
        expected.keys().collect::<Vec<_>>(),
        "K={shards} {format:?} {kind:?}: one delta per acked epoch (empty deltas included)"
    );
    for (epoch, rows) in &expected {
        assert_eq!(
            seen.get(epoch),
            Some(rows),
            "K={shards} {format:?} {kind:?}: cache diverged from poll refetch at epoch {epoch}"
        );
    }
}

#[test]
fn full_subscription_cache_matches_poll_refetch_at_every_epoch() {
    for shards in [1usize, 2, 4] {
        for format in [WireFormat::Json, WireFormat::Binary] {
            // Alternate the read kind across the grid so both row types
            // cover every K and both codecs between the two grid tests.
            let kind = if shards == 2 {
                ReadKind::Estimate
            } else {
                ReadKind::Predictions
            };
            push_matches_poll(shards, format, kind, None);
        }
    }
}

#[test]
fn ranged_subscription_cache_matches_poll_refetch_at_every_epoch() {
    let (d, _) = fixture();
    // A probe range spanning every shard at K = 4 (stride 3), handed over
    // unsorted and with a duplicate to exercise bootstrap normalization.
    let mut probe: Vec<usize> = (0..d.num_items()).rev().step_by(3).collect();
    probe.push(probe[0]);
    for (shards, format, kind) in [
        (1usize, WireFormat::Json, ReadKind::Estimate),
        (2, WireFormat::Binary, ReadKind::Predictions),
        (4, WireFormat::Json, ReadKind::Predictions),
        (4, WireFormat::Binary, ReadKind::Estimate),
    ] {
        push_matches_poll(shards, format, kind, Some(probe.clone()));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]
    #[test]
    fn prop_cache_matches_poll_refetch(
        k_pick in 0usize..3,
        fmt_pick in 0usize..2,
        kind_pick in 0usize..2,
        full_scope in 0usize..3,
        raw_items in proptest::collection::btree_set(0usize..1usize << 16, 1..12),
    ) {
        let shards = [1usize, 2, 4][k_pick];
        let format = [WireFormat::Json, WireFormat::Binary][fmt_pick];
        let kind = [ReadKind::Predictions, ReadKind::Estimate][kind_pick];
        let watch = if full_scope == 0 {
            None
        } else {
            let (d, _) = fixture();
            Some(raw_items.iter().map(|i| i % d.num_items()).collect())
        };
        push_matches_poll(shards, format, kind, watch);
    }
}

#[test]
fn a_single_shard_ingest_pushes_exactly_the_dirty_shards_rows() {
    let (d, batches) = fixture();
    let shards = 4;
    let index = ShardIndex::new(ShardRouter::new(shards), d.num_items());
    let (addr, running) = spawn_server(fleet_for(&d, shards), ServerConfig::default());

    // Seed one normal ingest first, so the subscription bootstraps at a
    // non-genesis epoch.
    let mut writer = FleetClient::connect(addr).expect("writer connects");
    let FleetOp::Ingest { workers, answers } = FleetOp::ingest_from(&d.answers, &batches[0]) else {
        unreachable!()
    };
    let (_, seeded_at) = writer.ingest_tagged(workers, answers).expect("seed ingest");

    let mut sub = FleetClient::connect(addr)
        .expect("subscriber connects")
        .subscribe_reads(ReadKind::Predictions, None)
        .expect("subscription acked");
    assert_eq!(sub.epoch(), seeded_at, "bootstrap at the current epoch");

    // An ingest whose answers all route to one shard: keep only batch 1's
    // triples owned by the first triple's shard. Workers still arrive at
    // most once, so the arrival contract holds.
    let FleetOp::Ingest { workers, answers } = FleetOp::ingest_from(&d.answers, &batches[1]) else {
        unreachable!()
    };
    let target = index.shard_of(answers[0].0);
    let narrowed: Vec<_> = answers
        .into_iter()
        .filter(|(item, _, _)| index.shard_of(*item) == target)
        .collect();
    assert!(!narrowed.is_empty(), "the narrowed batch still ingests");
    let (_, acked) = writer
        .ingest_tagged(workers, narrowed)
        .expect("single-shard ingest");

    let delta = sub
        .next_delta()
        .expect("delta frame")
        .expect("stream not ended");
    assert_eq!(delta.applied.epoch, acked);
    assert_eq!(
        delta.applied.dirty_shards, 1,
        "a 1-of-{shards} ingest dirties one shard"
    );
    assert_eq!(
        delta.applied.rows,
        index.items_of(target).len(),
        "the delta carries exactly the dirty shard's rows"
    );

    // And the minimal delta still left the cache poll-identical.
    let items = sub.cache().items().to_vec();
    let (rows, tag) = poll_rows(&mut writer, ReadKind::Predictions, &items);
    assert_eq!(tag, acked);
    assert_eq!(
        cache_rows(&sub),
        rows,
        "cache diverged after a minimal delta"
    );

    writer.shutdown().expect("shutdown");
    running.join().expect("server joins");
    assert!(
        sub.next_delta().expect("wind-down").is_none(),
        "clean EOF after wind-down"
    );
}

#[test]
fn subscriptions_cap_at_max_clients_minus_one_and_free_their_slot() {
    let (d, batches) = fixture();
    let (addr, running) = spawn_server(
        fleet_for(&d, 2),
        ServerConfig {
            max_clients: 2,
            ..ServerConfig::default()
        },
    );

    // Slot 1 of 1: granted.
    let sub = FleetClient::connect(addr)
        .expect("subscriber connects")
        .subscribe_reads(ReadKind::Predictions, None)
        .expect("first subscription granted");

    // One past the cap: refused with a readable framed error — for read
    // and op subscriptions alike, which share the cap — and the refused
    // connection stays usable for request/reply traffic.
    let mut probe = FleetClient::connect(addr).expect("probe connects");
    let err = probe
        .apply_op(&FleetOp::SubscribeReads {
            kind: ReadKind::Predictions,
            items: None,
        })
        .expect_err("read subscription past the cap is refused");
    assert!(
        matches!(&err, TransportError::Rejected(m) if m.contains("subscription slots")),
        "refusal names the cause: {err}"
    );
    let err = probe
        .apply_op(&FleetOp::SubscribeOps { from_epoch: 0 })
        .expect_err("op subscription past the cap is refused");
    assert!(
        matches!(&err, TransportError::Rejected(m) if m.contains("subscription slots")),
        "refusal names the cause: {err}"
    );
    probe
        .predict_all()
        .expect("the refused connection still answers reads");

    // Dropping the live subscription frees its slot once the server
    // notices (the next push hits the dead socket); a retried
    // subscription is then granted. The probe doubles as the writer —
    // with `max_clients: 2` both handlers are spoken for until the
    // dropped subscription's handler comes back.
    drop(sub);
    let FleetOp::Ingest { workers, answers } = FleetOp::ingest_from(&d.answers, &batches[0]) else {
        unreachable!()
    };
    probe.ingest_tagged(workers, answers).expect("ingest");
    let mut reclaimed = false;
    for _ in 0..250 {
        let head = probe.refit_tagged().expect("refit nudges the push path");
        match probe.apply_op(&FleetOp::SubscribeOps { from_epoch: head }) {
            Ok(FleetReply::Subscribed { .. }) => {
                reclaimed = true;
                break;
            }
            Ok(other) => panic!("unexpected subscribe reply: {}", other.name()),
            Err(TransportError::Rejected(m)) if m.contains("subscription slots") => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected refusal: {e}"),
        }
    }
    assert!(reclaimed, "a dropped subscription's slot is reclaimed");

    // The probe's connection flipped to push-only when its subscription
    // was granted; the freed handler serves the shutdown.
    drop(probe);
    let mut closer = FleetClient::connect(addr).expect("closer connects");
    closer.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn a_silent_server_times_out_the_subscription_instead_of_hanging() {
    // A hand-rolled peer that grants the subscription — one valid JSON
    // bootstrap frame — and then goes silent without closing: the
    // dead-leader shape. The read deadline must surface it as `TimedOut`.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
    let silent = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().expect("accept");
        let _op = cpa::transport::read_frame(&mut stream)
            .expect("subscribe frame")
            .expect("op arrives");
        let bootstrap = serde_json::to_string(&FleetReply::PredictedDelta {
            items: vec![0, 1],
            predictions: vec![
                LabelSet::from_labels(3, vec![1]),
                LabelSet::from_labels(3, vec![0, 2]),
            ],
            dirty_shards: vec![0],
            epoch: 0,
        })
        .expect("bootstrap serializes");
        cpa::transport::write_frame(&mut stream, &bootstrap).expect("bootstrap frame");
        // Hold the socket open, pushing nothing, until the test is done.
        let _ = done_rx.recv();
    });

    let client = FleetClient::connect_with_config(
        addr,
        WireFormat::Json,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            write_timeout: Some(Duration::from_millis(100)),
        },
    )
    .expect("TCP connect succeeds");
    let mut sub = client
        .subscribe_reads(ReadKind::Predictions, Some(vec![0, 1]))
        .expect("bootstrap accepted");
    assert_eq!(sub.epoch(), 0);
    assert_eq!(
        sub.cache().predict(1),
        Some(&LabelSet::from_labels(3, vec![0, 2])),
        "bootstrap rows are served from the cache"
    );

    let start = std::time::Instant::now();
    let err = sub.next_delta().expect_err("silent peer must not hang");
    assert!(
        matches!(err, TransportError::TimedOut),
        "typed timeout, got: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timed out via the configured deadline, not some other stall"
    );
    let _ = done_tx.send(());
    silent.join().expect("listener thread joins");
}
