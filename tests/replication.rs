//! Leader/follower replication over op-log shipping, end to end.
//!
//! Contract 1 (bit-identity at every acked epoch): a follower tailing a
//! leader's `SubscribeOps` stream serves, at every epoch the leader acked,
//! predictions bit-identical to replaying the leader's recorded op-log to
//! that epoch (`Fleet::replay_to_epoch`) — at K ∈ {1, 4}, under both wire
//! codecs.
//!
//! Contract 2 (failover): once the leader winds down, the follower has
//! replayed to head; promoting it yields a fleet whose manifest is
//! **byte-for-byte** the leader's final manifest.
//!
//! Contract 3 (resume): subscribing from an arbitrary `from_epoch` replays
//! exactly the recorded backlog past that epoch; resume from behind the
//! head without op recording is refused with a readable error.
//!
//! Contract 4 (log tailing): a follower tailing a live on-disk JSONL
//! op-log through the tolerant tail-reader treats a partially-appended
//! final record as a clean resumable boundary — it serves the committed
//! prefix, then picks the record up whole once its newline lands.
//!
//! Contract 5 (the two serve-path bugfixes ride along): `Fleet::replay`
//! stops at a mid-log `Shutdown` while `replay_until(.., StopAt::End)`
//! — the follower discipline — replays past it; and a client with socket
//! deadlines surfaces a silent server as `TimedOut` instead of hanging.

use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{WorkerBatch, WorkerStream};
use cpa::eval::runner::Method;
use cpa::math::rng::seeded;
use cpa::serve::{Fleet, FleetOp, Follower, OpFeed, OpLogTailFeed, ShippedOp, StopAt};
use cpa::transport::{
    ClientConfig, FleetClient, FleetServer, ServerConfig, TransportError, WireFormat,
};
use std::collections::BTreeMap;
use std::time::Duration;

const SEED: u64 = 9109;

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    (sim.dataset, batches)
}

fn fleet_for(d: &cpa::data::dataset::Dataset, shards: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, 2, i, u, c, |_| Method::CpaSvi.engine(i, u, c, SEED))
}

/// The canonical mutation stream: one ingest per arrival batch with a
/// refit spliced into the middle.
fn mutation_ops(d: &cpa::data::dataset::Dataset, batches: &[WorkerBatch]) -> Vec<FleetOp> {
    let mut ops: Vec<FleetOp> = batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .collect();
    ops.insert(ops.len() / 2, FleetOp::Refit);
    ops
}

fn spawn_server(
    fleet: Fleet,
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<cpa::transport::ServeOutcome>,
) {
    let server = FleetServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve(fleet).expect("serve"));
    (addr, handle)
}

#[test]
fn follower_serves_every_acked_epoch_bit_identically_and_promotes_to_the_leader_manifest() {
    let (d, batches) = fixture();
    for shards in [1usize, 4] {
        for format in [WireFormat::Json, WireFormat::Binary] {
            let (addr, running) = spawn_server(
                fleet_for(&d, shards),
                ServerConfig {
                    record_ops: true,
                    ..ServerConfig::default()
                },
            );

            // Subscribe from genesis before any mutation lands, then tail
            // the stream on its own thread, recording the follower's
            // served predictions at every epoch it reaches.
            let subscription = FleetClient::connect_with(addr, format)
                .expect("subscriber connects")
                .subscribe(0)
                .expect("subscription acked");
            assert_eq!(subscription.head(), 0, "fresh leader head");
            let follower_fleet = fleet_for(&d, shards);
            let tail = std::thread::spawn(move || {
                let mut feed = subscription;
                let mut follower = Follower::new(follower_fleet);
                let mut served: BTreeMap<u64, Vec<_>> = BTreeMap::new();
                while let Some(shipped) = feed.next_op().expect("shipped frame") {
                    follower.apply_shipped(shipped).expect("applies cleanly");
                    assert_eq!(follower.lag(), 0, "tagged stream applies to head");
                    served.insert(follower.epoch(), follower.fleet().predict_all());
                }
                (follower, served)
            });

            // The writer: every mutation through a plain client, collecting
            // the acked epochs.
            let mut writer = FleetClient::connect_with(addr, format).expect("writer connects");
            let mut acked = Vec::new();
            for op in mutation_ops(&d, &batches) {
                let epoch = match op {
                    FleetOp::Ingest { workers, answers } => {
                        writer.ingest_tagged(workers, answers).expect("ingest").1
                    }
                    FleetOp::Refit => writer.refit_tagged().expect("refit"),
                    _ => unreachable!(),
                };
                acked.push(epoch);
            }
            writer.shutdown().expect("shutdown");

            let outcome = running.join().expect("server joins");
            // Server wind-down closed the stream; the tail thread saw a
            // clean EOF at head.
            let (follower, served) = tail.join().expect("tail joins");
            assert_eq!(follower.epoch(), *acked.last().unwrap());

            // Contract 1: at every acked epoch, the follower served what
            // replaying the leader's recorded op-log to that epoch serves.
            for &epoch in &acked {
                let mut replayed = fleet_for(&d, shards);
                replayed.replay_to_epoch(outcome.op_log.iter().cloned(), epoch);
                assert_eq!(
                    served.get(&epoch),
                    Some(&replayed.predict_all()),
                    "K={shards} {format:?}: follower diverged at epoch {epoch}"
                );
            }

            // Contract 2: failover — the promoted follower's manifest is
            // byte-for-byte the leader's final manifest, JSON and binary.
            let promoted = follower.promote();
            assert_eq!(
                promoted.snapshot().to_json(),
                outcome.fleet.snapshot().to_json(),
                "K={shards} {format:?}: promoted manifest diverged (JSON)"
            );
            assert_eq!(
                promoted.snapshot().to_binary(),
                outcome.fleet.snapshot().to_binary(),
                "K={shards} {format:?}: promoted manifest diverged (binary)"
            );
        }
    }
}

#[test]
fn subscription_resumes_from_an_arbitrary_epoch_via_recorded_backlog() {
    let (d, batches) = fixture();
    let ops = mutation_ops(&d, &batches);
    let (addr, running) = spawn_server(
        fleet_for(&d, 2),
        ServerConfig {
            record_ops: true,
            ..ServerConfig::default()
        },
    );

    let mut writer = FleetClient::connect(addr).expect("writer connects");
    for op in ops.clone() {
        writer.apply_op(&op).expect("mutation accepted");
    }

    // A follower that already holds the first `resume_at` epochs (here:
    // seeded by local replay of the shared prefix) subscribes from there
    // and receives exactly the backlog past it.
    let resume_at = ops.len() as u64 / 2;
    let mut follower = Follower::new(fleet_for(&d, 2));
    for op in &ops[..resume_at as usize] {
        follower
            .apply_shipped(ShippedOp::untagged(op.clone()))
            .expect("prefix seeds");
    }
    assert_eq!(follower.epoch(), resume_at);

    let mut subscription = FleetClient::connect(addr)
        .expect("subscriber connects")
        .subscribe(resume_at)
        .expect("resume acked");
    assert_eq!(subscription.head(), ops.len() as u64);
    let mut first_epoch = None;
    while follower.epoch() < subscription.head() {
        let (epoch, op) = subscription
            .next_frame()
            .expect("backlog frame")
            .expect("backlog not exhausted early");
        first_epoch.get_or_insert(epoch);
        follower
            .apply_shipped(ShippedOp::tagged(epoch, op))
            .expect("backlog applies");
    }
    assert_eq!(
        first_epoch,
        Some(resume_at + 1),
        "backlog starts right past from_epoch"
    );

    writer.shutdown().expect("shutdown");
    let outcome = running.join().expect("server joins");
    assert_eq!(
        follower.promote().snapshot().to_json(),
        outcome.fleet.snapshot().to_json(),
        "resumed follower diverged from the leader"
    );
}

#[test]
fn resume_from_behind_the_head_without_op_recording_is_refused() {
    let (d, batches) = fixture();
    let (addr, running) = spawn_server(fleet_for(&d, 2), ServerConfig::default());

    let mut writer = FleetClient::connect(addr).expect("writer connects");
    let op = FleetOp::ingest_from(&d.answers, &batches[0]);
    writer.apply_op(&op).expect("mutation accepted");

    // The server cannot replay a gap it never recorded.
    let err = FleetClient::connect(addr)
        .expect("subscriber connects")
        .subscribe(0)
        .expect_err("resume must be refused");
    assert!(
        matches!(&err, TransportError::Rejected(m) if m.contains("not recording")),
        "refusal names the cause: {err}"
    );

    // Subscribing from the current head needs no backlog and is granted.
    let subscription = FleetClient::connect(addr)
        .expect("subscriber connects")
        .subscribe(1)
        .expect("head subscription granted");
    assert_eq!(subscription.head(), 1);

    writer.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn a_follower_tails_a_live_on_disk_op_log_across_a_partial_append() {
    use std::io::Write;

    let (d, batches) = fixture();
    let ops = mutation_ops(&d, &batches);
    let jsonl = cpa::serve::ops_to_jsonl(&ops);
    // Cut inside the final record: the on-disk state after a writer crash
    // (or mid-flush) — everything before the last newline is committed.
    let last = jsonl.lines().last().unwrap();
    let committed = jsonl.len() - last.len() - 1 + last.len() / 2;

    let path = std::env::temp_dir().join(format!("cpa_replication_tail_{SEED}.jsonl"));
    std::fs::write(&path, &jsonl.as_bytes()[..committed]).expect("partial log written");

    let mut follower = Follower::new(fleet_for(&d, 2));
    let mut feed = OpLogTailFeed::new(&path, Duration::from_millis(5), Duration::from_millis(50));
    follower.sync(&mut feed).expect("tail syncs");
    assert_eq!(
        follower.epoch(),
        ops.len() as u64 - 1,
        "partial final record is not served"
    );
    assert_eq!(feed.delivered(), ops.len() - 1);

    // The writer finishes the record (its newline lands): the next sync
    // picks it up whole and the follower reaches the leader's state.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("reopen log");
    file.write_all(&jsonl.as_bytes()[committed..])
        .expect("rest of the record");
    drop(file);
    follower.sync(&mut feed).expect("tail resumes");
    assert_eq!(follower.epoch(), ops.len() as u64);
    let _ = std::fs::remove_file(&path);

    let mut replayed = fleet_for(&d, 2);
    replayed.replay(ops);
    assert_eq!(
        follower.promote().snapshot().to_json(),
        replayed.snapshot().to_json(),
        "tailed follower diverged from local replay"
    );
}

#[test]
fn replay_stops_at_shutdown_but_replay_until_end_is_the_follower_discipline() {
    let (d, batches) = fixture();
    let mut ops = mutation_ops(&d, &batches);
    // A mid-log Shutdown with real mutations after it — the shape a
    // leader's recorded log has when the server was restarted and kept
    // appending.
    let marker = ops.len() / 2;
    ops.insert(marker, FleetOp::Shutdown);
    let before_marker = marker as u64;

    let mut stops = fleet_for(&d, 2);
    let replies = stops.replay(ops.clone());
    assert_eq!(
        stops.epoch(),
        before_marker,
        "replay consumes nothing past the Shutdown marker"
    );
    assert_eq!(replies.len() as u64, before_marker + 1, "marker is acked");

    let mut past = fleet_for(&d, 2);
    past.replay_until(ops.clone(), StopAt::End);
    assert_eq!(
        past.epoch(),
        ops.len() as u64 - 1,
        "StopAt::End applies every mutation; the marker itself mutates nothing"
    );

    // Equivalent explicit spellings.
    let mut explicit = fleet_for(&d, 2);
    explicit.replay_until(ops, StopAt::Shutdown);
    assert_eq!(explicit.epoch(), stops.epoch());
    assert_eq!(
        explicit.snapshot().to_json(),
        stops.snapshot().to_json(),
        "replay and replay_until(StopAt::Shutdown) must be the same function"
    );
}

#[test]
fn a_silent_server_times_out_instead_of_hanging_the_client() {
    // A listener that accepts and then never answers — the pathological
    // peer that used to hang a deadline-less client forever.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let silent = std::thread::spawn(move || {
        let mut held = Vec::new();
        // Hold every accepted socket open, replying to nothing, until the
        // test ends and the listener is dropped.
        for stream in listener.incoming().take(1) {
            held.push(stream);
        }
        held
    });

    let mut client = FleetClient::connect_with_config(
        addr,
        WireFormat::Json,
        ClientConfig {
            read_timeout: Some(Duration::from_millis(100)),
            write_timeout: Some(Duration::from_millis(100)),
        },
    )
    .expect("TCP connect succeeds");
    let start = std::time::Instant::now();
    let err = client.refit_all().expect_err("silent peer must not hang");
    assert!(
        matches!(err, TransportError::TimedOut),
        "typed timeout, got: {err}"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timed out via the configured deadline, not some other stall"
    );
    drop(client);
    silent.join().expect("listener thread joins");
}
