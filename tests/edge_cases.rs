//! Failure-injection and degenerate-input tests: the model must stay
//! well-behaved on crowds no sane experiment would produce.

use cpa::prelude::*;
use cpa_data::workers::LabelAffinity;

fn ls(c: usize, v: &[usize]) -> LabelSet {
    LabelSet::from_labels(c, v.iter().copied())
}

#[test]
fn all_spammer_crowd_does_not_panic() {
    // Every worker is a uniform spammer on a different label: there is no
    // signal at all; the model must still terminate and produce well-formed
    // (if arbitrary) answers.
    let c = 6;
    let mut m = AnswerMatrix::new(8, 6, c);
    for i in 0..8 {
        for u in 0..6 {
            m.insert(i, u, ls(c, &[u % c]));
        }
    }
    let fitted = CpaModel::new(CpaConfig::default().with_truncation(4, 4)).fit(&m);
    let preds = fitted.predict_all(&m);
    assert_eq!(preds.len(), 8);
    for p in preds {
        assert!(!p.is_empty());
    }
}

#[test]
fn single_label_universe() {
    let mut m = AnswerMatrix::new(3, 3, 1);
    for i in 0..3 {
        for u in 0..3 {
            m.insert(i, u, ls(1, &[0]));
        }
    }
    let fitted = CpaModel::new(CpaConfig::default().with_truncation(2, 2)).fit(&m);
    let preds = fitted.predict_all(&m);
    for p in preds {
        assert_eq!(p.to_vec(), vec![0]);
    }
}

#[test]
fn single_community_truncation_degrades_to_majority_like_behaviour() {
    // Paper §3.2: "If M tends to zero, all workers form a single community
    // ... and the result is similar to majority voting."
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), 301);
    let cfg = CpaConfig::default().with_truncation(1, 8).with_seed(301);
    let cpa = CpaModel::new(cfg).fit(&sim.dataset.answers);
    let cpa_preds = cpa.predict_all(&sim.dataset.answers);
    let mv_preds = MajorityVoting::new().aggregate(&sim.dataset.answers);
    let m_cpa = evaluate(&cpa_preds, &sim.dataset.truth);
    let m_mv = evaluate(&mv_preds, &sim.dataset.truth);
    // With one community the *community* signal is gone, but the per-worker
    // agreement refinement (DESIGN.md deviation #2) remains, so the paper's
    // "similar to majority voting" is a lower bound here: CPA must not
    // collapse below MV.
    assert!(
        m_cpa.f1 >= m_mv.f1 - 0.1,
        "single-community CPA F1 {} collapsed below MV {}",
        m_cpa.f1,
        m_mv.f1
    );
}

#[test]
fn disconnected_items_are_isolated() {
    // Two item groups answered by disjoint worker pools must not poison each
    // other: the connected half with good workers stays accurate.
    let c = 4;
    let mut m = AnswerMatrix::new(6, 6, c);
    // Items 0–2 answered correctly by workers 0–2 (always label {0,1}).
    for i in 0..3 {
        for u in 0..3 {
            m.insert(i, u, ls(c, &[0, 1]));
        }
    }
    // Items 3–5 answered randomly-ish by workers 3–5.
    for (k, i) in (3..6).enumerate() {
        for u in 3..6 {
            m.insert(i, u, ls(c, &[(u + k) % c]));
        }
    }
    let truth: Vec<LabelSet> = (0..6)
        .map(|i| if i < 3 { ls(c, &[0, 1]) } else { ls(c, &[2]) })
        .collect();
    let fitted = CpaModel::new(CpaConfig::default().with_truncation(4, 4)).fit(&m);
    let preds = fitted.predict_all(&m);
    let m_good = evaluate(&preds[..3], &truth[..3]);
    assert!(
        m_good.f1 > 0.8,
        "clean half corrupted by noisy half: F1 {}",
        m_good.f1
    );
}

#[test]
fn worker_with_single_answer_is_handled() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), 303);
    let mut answers = sim.dataset.answers.clone();
    // Strip one worker down to a single answer.
    let u = (0..answers.num_workers())
        .find(|&u| answers.worker_answers(u).len() > 2)
        .unwrap();
    let items: Vec<u32> = answers.worker_answers(u).iter().map(|(i, _)| *i).collect();
    for &i in &items[1..] {
        answers.remove(i as usize, u);
    }
    let fitted = CpaModel::new(CpaConfig::default().with_truncation(6, 8)).fit(&answers);
    // The sparse worker's weight must be finite and positive (shrinkage to
    // its community prior, not a NaN from a 1-sample MI estimate).
    let w = fitted.worker_weights()[u];
    assert!(w.is_finite() && w > 0.0, "sparse worker weight {w}");
}

#[test]
fn spammer_injection_on_tiny_dataset() {
    let mut m = AnswerMatrix::new(2, 2, 3);
    m.insert(0, 0, ls(3, &[0]));
    m.insert(1, 1, ls(3, &[1]));
    let d = Dataset::new("tiny", m, vec![ls(3, &[0]), ls(3, &[1])]);
    let mut rng = cpa::math::rng::seeded(1);
    let (spammed, types) = inject_spammers(&d, 0.5, &LabelAffinity::trivial(3), &mut rng);
    assert!(spammed.answers.num_answers() > d.answers.num_answers());
    assert!(!types.is_empty());
    // Still aggregatable.
    let preds = MajorityVoting::new().aggregate(&spammed.answers);
    assert_eq!(preds.len(), 2);
}

#[test]
fn weighted_mv_and_agreement_pipeline() {
    use cpa::baselines::wmv::WeightedMajorityVoting;
    use cpa::data::agreement::observed_agreement;
    let sim = simulate(&DatasetProfile::image().scaled(0.05), 305);
    let preds = WeightedMajorityVoting::new().aggregate(&sim.dataset.answers);
    let m = evaluate(&preds, &sim.dataset.truth);
    assert!(m.f1 > 0.4, "wMV F1 {}", m.f1);
    let agreement = observed_agreement(&sim.dataset.answers);
    assert!((0.0..=1.0).contains(&agreement));
}

#[test]
fn prediction_modes_differ_but_both_score() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.06), 307);
    let mut cfg = CpaConfig::default().with_truncation(8, 10).with_seed(307);
    let size_adaptive = CpaModel::new(cfg.clone())
        .fit(&sim.dataset.answers)
        .predict_all(&sim.dataset.answers);
    cfg.prediction = PredictionMode::GreedyMultinomial;
    let greedy = CpaModel::new(cfg)
        .fit(&sim.dataset.answers)
        .predict_all(&sim.dataset.answers);
    let m_sa = evaluate(&size_adaptive, &sim.dataset.truth);
    let m_gr = evaluate(&greedy, &sim.dataset.truth);
    assert!(m_sa.f1 > 0.5, "SizeAdaptive F1 {}", m_sa.f1);
    assert!(m_gr.f1 > 0.3, "GreedyMultinomial F1 {}", m_gr.f1);
}

#[test]
fn online_with_batch_larger_than_population() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.04), 309);
    let mut online = OnlineCpa::new(
        CpaConfig::default().with_truncation(4, 5),
        sim.dataset.num_items(),
        sim.dataset.num_workers(),
        sim.dataset.num_labels(),
        0.875,
    );
    let mut rng = cpa::math::rng::seeded(310);
    // One giant batch = the degenerate "everything arrives at once" case.
    let stream = WorkerStream::new(&sim.dataset, 10_000, &mut rng);
    assert_eq!(stream.len(), 1);
    for batch in stream.iter() {
        online.partial_fit(&sim.dataset.answers, batch);
    }
    let preds = online.predict_all();
    assert_eq!(preds.len(), sim.dataset.num_items());
}
