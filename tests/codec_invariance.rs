//! Codec invariance: the binary encodings are pure representations — every
//! observable behaviour is bit-identical to the JSON paths they shadow.
//!
//! Contract 1 (checkpoints): for all seven engines, restoring a binary
//! checkpoint is **bit-identical** to restoring the JSON checkpoint of the
//! same snapshot — same predictions, same re-snapshot JSON — and the
//! binary document is materially smaller.
//!
//! Contract 2 (manifests): likewise for fleet manifests at K ∈ {1, 4}
//! shards, through `Fleet::restore`.
//!
//! Contract 3 (op-logs): a server-recorded op-log serialized to the binary
//! container replays to the same snapshot as its JSONL serialization.
//!
//! Contract 4 (negotiation): a JSON-only client round-trips unchanged
//! against a binary-capable server; mixed-codec concurrent clients see one
//! fleet bit-identically; a JSON-pinned server declines the binary
//! handshake and the client falls back on the same connection; a
//! binary-only server refuses JSON clients with a readable framed error;
//! and the 64 MiB frame cap is enforced identically under both codecs.

use cpa::core::engine::{drive, Checkpoint};
use cpa::data::io::{oplog_from_binary, oplog_to_binary};
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{MemorySource, WorkerBatch, WorkerStream};
use cpa::eval::runner::{engine_for, restore_engine, Method};
use cpa::math::rng::seeded;
use cpa::serve::{ops_to_jsonl, Fleet, FleetManifest, FleetOp};
use cpa::transport::{
    FleetClient, FleetServer, ServerConfig, WireFormat, WirePolicy, MAX_FRAME_BYTES,
};
use std::io::{Read, Write};

const SEED: u64 = 6106;

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    (sim.dataset, batches)
}

fn fleet_for(d: &cpa::data::dataset::Dataset, shards: usize) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(shards, 2, i, u, c, |_| Method::CpaSvi.engine(i, u, c, SEED))
}

#[test]
fn every_engine_restores_bit_identically_from_binary_and_json_checkpoints() {
    let (d, batches) = fixture();
    for method in Method::all() {
        let mut engine = engine_for(method, &d, 31);
        drive(
            engine.as_mut(),
            &mut MemorySource::new(&d.answers, batches.clone()),
        );
        let checkpoint = engine.snapshot();
        let json = checkpoint.to_json();
        let binary = checkpoint.to_binary();
        assert!(
            binary.len() < json.len(),
            "{}: binary checkpoint ({} bytes) not smaller than JSON ({} bytes)",
            method.name(),
            binary.len(),
            json.len()
        );

        // `from_bytes` dispatches on the leading magic: raw binary and
        // UTF-8 JSON both restore through the same entry point.
        let from_json = restore_engine(Checkpoint::from_bytes(json.as_bytes()).unwrap())
            .unwrap_or_else(|e| panic!("{}: JSON restore: {e}", method.name()));
        let from_binary = restore_engine(Checkpoint::from_bytes(&binary).unwrap())
            .unwrap_or_else(|e| panic!("{}: binary restore: {e}", method.name()));

        assert_eq!(
            from_binary.predict_all(),
            from_json.predict_all(),
            "{}: predictions diverged across encodings",
            method.name()
        );
        assert_eq!(
            from_binary.snapshot().to_json(),
            from_json.snapshot().to_json(),
            "{}: re-snapshots diverged across encodings",
            method.name()
        );
        assert_eq!(
            from_binary.snapshot().to_json(),
            json,
            "{}: binary restore lost state vs the original snapshot",
            method.name()
        );
    }
}

#[test]
fn fleet_manifests_restore_bit_identically_from_binary_at_k1_and_k4() {
    let (d, batches) = fixture();
    for k in [1usize, 4] {
        let mut fleet = fleet_for(&d, k);
        fleet.drive(&mut MemorySource::new(&d.answers, batches.clone()));
        let manifest = fleet.snapshot();
        let json = manifest.to_json();
        let binary = manifest.to_binary();
        assert!(
            binary.len() < json.len(),
            "K={k}: binary manifest ({}) not smaller than JSON ({})",
            binary.len(),
            json.len()
        );

        let restore =
            |m: FleetManifest| Fleet::restore(m, 2, restore_engine).expect("manifest restores");
        let from_json = restore(FleetManifest::from_bytes(json.as_bytes()).unwrap());
        let from_binary = restore(FleetManifest::from_bytes(&binary).unwrap());

        assert_eq!(
            from_binary.predict_all(),
            from_json.predict_all(),
            "K={k}: predictions diverged across manifest encodings"
        );
        assert_eq!(
            from_binary.snapshot().to_json(),
            json,
            "K={k}: binary manifest restore lost state"
        );
    }
}

#[test]
fn recorded_op_logs_replay_identically_from_binary_and_jsonl() {
    let (d, batches) = fixture();
    let ops: Vec<FleetOp> = batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .chain([FleetOp::Refit])
        .collect();

    let jsonl = ops_to_jsonl(&ops);
    let binary = oplog_to_binary(&ops);
    let from_jsonl: Vec<FleetOp> = cpa::serve::ops_from_jsonl(&jsonl).expect("JSONL parses");
    let from_binary: Vec<FleetOp> = oplog_from_binary(&binary).expect("binary op-log parses");
    assert_eq!(from_binary.len(), from_jsonl.len());

    let mut via_jsonl = fleet_for(&d, 4);
    via_jsonl.replay(from_jsonl);
    let mut via_binary = fleet_for(&d, 4);
    via_binary.replay(from_binary);
    assert_eq!(
        via_binary.snapshot().to_json(),
        via_jsonl.snapshot().to_json(),
        "op-log replay diverged across encodings"
    );
}

/// Serves `fleet` on an ephemeral port under `config`; returns the
/// address and the join handle.
fn spawn_server(
    fleet: Fleet,
    config: ServerConfig,
) -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<cpa::transport::ServeOutcome>,
) {
    let server = FleetServer::bind("127.0.0.1:0", config).expect("bind");
    let addr = server.local_addr().expect("addr");
    let handle = std::thread::spawn(move || server.serve(fleet).expect("serve"));
    (addr, handle)
}

#[test]
fn mixed_codec_clients_round_trip_one_fleet_bit_identically() {
    let (d, batches) = fixture();
    let ops: Vec<FleetOp> = batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .collect();

    // In-process reference on the same global op order.
    let mut reference = fleet_for(&d, 4);
    for op in ops.clone() {
        assert_eq!(reference.apply(op).name(), "Ingested");
    }
    reference.refit_all();
    let want = reference.predict_all();

    let (addr, running) = spawn_server(fleet_for(&d, 4), ServerConfig::default());
    let mut json_client =
        FleetClient::connect_with(addr, WireFormat::Json).expect("JSON client connects");
    let mut binary_client =
        FleetClient::connect_with(addr, WireFormat::Binary).expect("binary client connects");
    assert_eq!(json_client.wire_format(), WireFormat::Json);
    assert_eq!(
        binary_client.wire_format(),
        WireFormat::Binary,
        "Auto server grants the binary handshake"
    );

    // Alternate ingests across the two codecs — one deterministic global
    // order through two live connections speaking different wire formats.
    for (idx, op) in ops.into_iter().enumerate() {
        let FleetOp::Ingest { workers, answers } = op else {
            unreachable!()
        };
        let client = if idx % 2 == 0 {
            &mut json_client
        } else {
            &mut binary_client
        };
        client.ingest(workers, answers).expect("mixed ingest");
    }
    json_client.refit_all().expect("refit over JSON");

    let json_preds = json_client.predict_all().expect("predict over JSON");
    let binary_preds = binary_client.predict_all().expect("predict over binary");
    assert_eq!(json_preds, want, "JSON client diverged");
    assert_eq!(binary_preds, want, "binary client diverged");
    assert_eq!(
        json_client.snapshot().expect("JSON snapshot").to_json(),
        binary_client.snapshot().expect("binary snapshot").to_json(),
        "the two codecs see different manifests"
    );

    binary_client.shutdown().expect("shutdown over binary");
    let outcome = running.join().expect("server joins");
    assert_eq!(outcome.fleet.predict_all(), want);
}

#[test]
fn json_pinned_server_declines_the_handshake_and_the_client_falls_back() {
    let (d, batches) = fixture();
    let (addr, running) = spawn_server(
        fleet_for(&d, 2),
        ServerConfig {
            wire_policy: WirePolicy::JsonOnly,
            ..ServerConfig::default()
        },
    );

    // The binary request degrades to JSON on the same connection.
    let mut client = FleetClient::connect_with(addr, WireFormat::Binary).expect("client connects");
    assert_eq!(
        client.wire_format(),
        WireFormat::Json,
        "JsonOnly server must decline the binary handshake"
    );
    let FleetOp::Ingest { workers, answers } = FleetOp::ingest_from(&d.answers, &batches[0]) else {
        unreachable!()
    };
    client.ingest(workers, answers).expect("fallback ingest");
    client.refit_all().expect("fallback refit");
    assert_eq!(
        client.predict_all().expect("fallback predict").len(),
        d.num_items()
    );
    client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn binary_only_server_refuses_json_clients_readably() {
    let (d, _) = fixture();
    let (addr, running) = spawn_server(
        fleet_for(&d, 1),
        ServerConfig {
            wire_policy: WirePolicy::BinaryOnly,
            ..ServerConfig::default()
        },
    );

    // A JSON client's first op is answered with a framed JSON error
    // (the one codec it certainly reads), then the connection drops.
    let mut json_client =
        FleetClient::connect_with(addr, WireFormat::Json).expect("TCP connect succeeds");
    let err = json_client.refit_all().expect_err("JSON is refused");
    assert!(
        err.to_string().contains("binary"),
        "refusal names the requirement: {err}"
    );

    // A handshaking client is served normally.
    let mut binary_client =
        FleetClient::connect_with(addr, WireFormat::Binary).expect("binary connects");
    assert_eq!(binary_client.wire_format(), WireFormat::Binary);
    binary_client.refit_all().expect("binary refit");
    binary_client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn the_frame_cap_is_enforced_identically_under_both_codecs() {
    let (d, _) = fixture();
    let (addr, running) = spawn_server(fleet_for(&d, 1), ServerConfig::default());
    let oversized = ((MAX_FRAME_BYTES + 1) as u32).to_be_bytes();

    // JSON connection: the oversized declaration is the first prefix.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        raw.write_all(&oversized).expect("oversized prefix");
        // The server rejects before buffering and drops the connection
        // without a reply (no healthy frame boundary to answer on).
        assert_eq!(raw.read(&mut [0u8; 1]).expect("dropped"), 0);
    }
    // Binary connection: same declaration after a successful handshake.
    {
        let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
        let mut preamble = Vec::from(*b"CPAW");
        preamble.extend(1u32.to_be_bytes());
        raw.write_all(&preamble).expect("handshake preamble");
        let mut ack = [0u8; 8];
        raw.read_exact(&mut ack).expect("handshake ack");
        assert_eq!(&ack[..4], b"CPAW");
        assert_eq!(u32::from_be_bytes([ack[4], ack[5], ack[6], ack[7]]), 1);
        raw.write_all(&oversized).expect("oversized prefix");
        assert_eq!(raw.read(&mut [0u8; 1]).expect("dropped"), 0);
    }
    // Both abuses left the server serving.
    let mut client = FleetClient::connect_with(addr, WireFormat::Binary).expect("connect");
    client.refit_all().expect("healthy refit");
    client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn an_unsupported_binary_version_falls_back_to_json() {
    let (d, _) = fixture();
    let (addr, running) = spawn_server(fleet_for(&d, 1), ServerConfig::default());

    // A future client requesting wire version 99: the server acks 0
    // (refused) and the connection proceeds in JSON.
    let mut raw = std::net::TcpStream::connect(addr).expect("raw connect");
    let mut preamble = Vec::from(*b"CPAW");
    preamble.extend(99u32.to_be_bytes());
    raw.write_all(&preamble).expect("versioned preamble");
    let mut ack = [0u8; 8];
    raw.read_exact(&mut ack).expect("ack");
    assert_eq!(&ack[..4], b"CPAW");
    assert_eq!(
        u32::from_be_bytes([ack[4], ack[5], ack[6], ack[7]]),
        0,
        "unsupported version must be refused, not half-spoken"
    );
    // JSON still works on this very connection.
    let op = "\"Refit\"";
    raw.write_all(&(op.len() as u32).to_be_bytes())
        .expect("prefix");
    raw.write_all(op.as_bytes()).expect("payload");
    let mut prefix = [0u8; 4];
    raw.read_exact(&mut prefix).expect("reply prefix");
    let mut payload = vec![0u8; u32::from_be_bytes(prefix) as usize];
    raw.read_exact(&mut payload).expect("reply payload");
    let text = String::from_utf8(payload).expect("JSON reply");
    assert!(text.contains("Refitted"), "{text}");
    drop(raw);

    let mut client = FleetClient::connect(addr).expect("connect");
    client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}
