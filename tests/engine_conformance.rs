//! The engine conformance suite: one parameterized contract, executed
//! against **every** method in `Method::all()` with zero per-engine
//! special-casing — so any future engine added to the roster inherits the
//! whole suite for free.
//!
//! The contract, per engine:
//!
//! 1. **full protocol** — ingest every arrival batch → refit → predict
//!    yields one well-formed label set per item;
//! 2. **bitwise resume** — pausing mid-stream (snapshot → JSON → restore
//!    through the tag-dispatching `restore_engine` hook) and continuing is
//!    bit-identical to never pausing: predictions, truth estimate, and the
//!    seen answer count all match exactly;
//! 3. **wrong-tag restore rejected** — a checkpoint whose engine tag is
//!    edited to an unknown name, or to *any other* method's name, must fail
//!    to restore (never silently restore as a different method);
//! 4. **empty-ingest safe** — ingesting an empty batch (no workers, no
//!    items) before, between, or after real batches never panics and keeps
//!    predictions well-formed.

use cpa::core::engine::{drive, Checkpoint};
use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::{simulate, SimulatedDataset};
use cpa::data::stream::{BatchSource, MemorySource, WorkerBatch, WorkerStream};
use cpa::eval::runner::{engine_for, restore_engine, Method};
use cpa::math::rng::seeded;

const SEED: u64 = 4111;

fn fixture() -> (SimulatedDataset, Vec<WorkerBatch>) {
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), SEED);
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    assert!(
        batches.len() >= 4,
        "need enough batches to pause mid-stream"
    );
    (sim, batches)
}

fn assert_well_formed(preds: &[LabelSet], num_items: usize, num_labels: usize, ctx: &str) {
    assert_eq!(preds.len(), num_items, "{ctx}: one prediction per item");
    for (i, p) in preds.iter().enumerate() {
        assert_eq!(p.universe(), num_labels, "{ctx}: item {i} universe");
    }
}

/// Exact (bitwise, via `==` on the raw values) equality of two estimates.
fn assert_estimates_identical(
    a: &cpa::core::truth::TruthEstimate,
    b: &cpa::core::truth::TruthEstimate,
    ctx: &str,
) {
    assert_eq!(a.soft, b.soft, "{ctx}: soft labels diverged");
    assert_eq!(
        a.expected_size, b.expected_size,
        "{ctx}: expected sizes diverged"
    );
    assert_eq!(
        a.worker_weight, b.worker_weight,
        "{ctx}: worker weights diverged"
    );
}

#[test]
fn every_engine_runs_the_full_protocol_and_resumes_bit_identically() {
    let (sim, batches) = fixture();
    let d = &sim.dataset;
    let pause_at = batches.len() / 2;

    for method in Method::all() {
        let name = method.name();

        // Uninterrupted run: the reference trajectory.
        let mut uninterrupted = engine_for(method, d, SEED);
        drive(
            uninterrupted.as_mut(),
            &mut MemorySource::new(&d.answers, batches.clone()),
        );
        let expected_preds = uninterrupted.predict_all();
        assert_well_formed(&expected_preds, d.num_items(), d.num_labels(), name);

        // Paused run: half the stream, snapshot → JSON → restore-by-tag,
        // continue with the remaining batches, refit.
        let mut paused = engine_for(method, d, SEED);
        let mut head = MemorySource::new(&d.answers, batches[..pause_at].to_vec());
        while let Some(batch) = head.next_batch() {
            paused.ingest(head.answers(), &batch);
        }
        let json = paused.snapshot().to_json();
        drop(paused);
        let mut resumed = restore_engine(Checkpoint::from_json(&json).unwrap())
            .unwrap_or_else(|e| panic!("{name}: restore failed: {e}"));
        assert_eq!(
            resumed.name(),
            name,
            "restore-by-tag picked the wrong engine"
        );
        drive(
            resumed.as_mut(),
            &mut MemorySource::new(&d.answers, batches[pause_at..].to_vec()),
        );

        assert_eq!(
            resumed.predict_all(),
            expected_preds,
            "{name}: predictions diverged after mid-stream resume"
        );
        assert_estimates_identical(&resumed.estimate(), &uninterrupted.estimate(), name);
        assert_eq!(
            resumed.seen_answers().num_answers(),
            d.answers.num_answers(),
            "{name}: answers lost across the checkpoint"
        );
    }
}

#[test]
fn wrong_tag_restore_is_rejected_for_every_engine() {
    let (sim, batches) = fixture();
    let d = &sim.dataset;

    for method in Method::all() {
        let name = method.name();
        let mut engine = engine_for(method, d, SEED);
        drive(
            engine.as_mut(),
            &mut MemorySource::new(&d.answers, batches.clone()),
        );
        let checkpoint = engine.snapshot();

        // An unknown tag must be rejected by the dispatching hook.
        let mut unknown = checkpoint.clone();
        unknown.engine = "no-such-engine".to_string();
        let err = restore_engine(Checkpoint::from_json(&unknown.to_json()).unwrap())
            .err()
            .unwrap_or_else(|| panic!("{name}: unknown tag restored"));
        assert!(err.to_string().contains("no-such-engine"), "{name}: {err}");

        // Retagging as any *other* method must be rejected too — a payload
        // must never restore as a different method.
        for other in Method::all() {
            if other == method {
                continue;
            }
            let mut retagged = checkpoint.clone();
            retagged.engine = other.name().to_string();
            let result = restore_engine(Checkpoint::from_json(&retagged.to_json()).unwrap());
            assert!(
                result.is_err(),
                "{name} checkpoint retagged `{}` restored instead of failing",
                other.name()
            );
        }
    }
}

#[test]
fn empty_ingest_is_safe_for_every_engine() {
    let (sim, batches) = fixture();
    let d = &sim.dataset;
    let empty = |index: usize| WorkerBatch {
        index,
        workers: Vec::new(),
        items: Vec::new(),
    };

    for method in Method::all() {
        let name = method.name();
        let mut engine = engine_for(method, d, SEED);

        // Empty ingest + refit on a completely fresh engine (zero answers).
        engine.ingest(&d.answers, &empty(1));
        engine.refit();
        assert_well_formed(
            &engine.predict_all(),
            d.num_items(),
            d.num_labels(),
            &format!("{name} after empty-only ingest"),
        );
        assert_eq!(engine.seen_answers().num_answers(), 0, "{name}");

        // Real data with an empty batch in the middle and at the end.
        engine.ingest(&d.answers, &batches[0]);
        engine.ingest(&d.answers, &empty(3));
        engine.ingest(&d.answers, &batches[1]);
        engine.refit();
        assert_well_formed(
            &engine.predict_all(),
            d.num_items(),
            d.num_labels(),
            &format!("{name} after mixed ingest"),
        );
        engine.ingest(&d.answers, &empty(5));
        engine.refit();
        assert_well_formed(
            &engine.predict_all(),
            d.num_items(),
            d.num_labels(),
            &format!("{name} after trailing empty ingest"),
        );
        let expected: usize = batches[..2]
            .iter()
            .flat_map(|b| &b.workers)
            .map(|&w| d.answers.worker_answers(w).len())
            .sum();
        assert_eq!(
            engine.seen_answers().num_answers(),
            expected,
            "{name}: empty batches must not change the seen set"
        );
    }
}
