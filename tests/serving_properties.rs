//! Property and boundary tests for the serving-layer data plumbing:
//! `WorkerBatch::shard_split` (K=1 identity, exact partition of items,
//! workers routed to every shard they answered into, empty shards
//! preserved) and `QueueSource` drain semantics (FIFO order, growing
//! universe, equivalence with the in-memory source all the way through an
//! engine fit).

use cpa::core::engine::drive;
use cpa::data::dataset::Dataset;
use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::queue::queue;
use cpa::data::simulate::simulate;
use cpa::data::stream::{shard_of, BatchSource, MemorySource, WorkerStream};
use cpa::eval::runner::{engine_for, Method};
use cpa::math::rng::seeded;
use proptest::prelude::*;
use rand::Rng;

/// A small random crowd (every worker answers something with probability
/// ~0.7 per item, so some workers may be inactive).
fn arbitrary_dataset(items: usize, workers: usize, labels: usize, seed: u64) -> Dataset {
    let mut rng = seeded(seed);
    let mut m = cpa::data::answers::AnswerMatrix::new(items, workers, labels);
    for i in 0..items {
        for u in 0..workers {
            if rng.random::<f64>() < 0.6 {
                let n = 1 + rng.random_range(0..labels.min(3));
                let mut l = LabelSet::empty(labels);
                for _ in 0..n {
                    l.insert(rng.random_range(0..labels));
                }
                m.insert(i, u, l);
            }
        }
    }
    Dataset::new("prop", m, vec![LabelSet::empty(labels); items])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn shard_split_is_an_exact_partition(
        items in 2usize..14,
        workers in 2usize..10,
        labels in 2usize..6,
        seed in 0u64..10_000,
        k in 1usize..6,
    ) {
        let d = arbitrary_dataset(items, workers, labels, seed);
        let mut rng = seeded(seed ^ 0x5eed);
        let stream = WorkerStream::new(&d, 3, &mut rng);
        for batch in stream.iter() {
            let shards = batch.shard_split(&d.answers, k);
            prop_assert_eq!(shards.len(), k);
            // Items: exact partition, each in its owning shard.
            let mut union: Vec<usize> = Vec::new();
            for (s, shard) in shards.iter().enumerate() {
                prop_assert_eq!(shard.index, batch.index);
                for &i in &shard.items {
                    prop_assert_eq!(shard_of(i, k), s);
                }
                union.extend(&shard.items);
            }
            union.sort_unstable();
            prop_assert_eq!(&union, &batch.items);
            // Workers: in exactly the shards they answered into; the union
            // covers every batch worker (WorkerStream workers are active).
            let mut wunion: Vec<usize> = Vec::new();
            for (s, shard) in shards.iter().enumerate() {
                for &w in &shard.workers {
                    prop_assert!(
                        d.answers
                            .worker_answers(w)
                            .iter()
                            .any(|(i, _)| shard_of(*i as usize, k) == s),
                        "worker {} in shard {} without an answer there", w, s
                    );
                }
                wunion.extend(&shard.workers);
            }
            wunion.sort_unstable();
            wunion.dedup();
            let mut expect = batch.workers.clone();
            expect.sort_unstable();
            prop_assert_eq!(wunion, expect);
        }
    }

    #[test]
    fn single_shard_split_is_identity(
        items in 2usize..12,
        workers in 2usize..8,
        labels in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let d = arbitrary_dataset(items, workers, labels, seed);
        let mut rng = seeded(seed ^ 0x1d);
        let stream = WorkerStream::new(&d, 4, &mut rng);
        for batch in stream.iter() {
            let shards = batch.shard_split(&d.answers, 1);
            prop_assert_eq!(shards.len(), 1);
            prop_assert_eq!(&shards[0].workers, &batch.workers);
            prop_assert_eq!(&shards[0].items, &batch.items);
        }
    }

    #[test]
    fn queue_drain_equals_memory_source(
        items in 2usize..12,
        workers in 2usize..10,
        labels in 2usize..5,
        seed in 0u64..10_000,
        batch_size in 1usize..5,
    ) {
        // Pushing a worker stream through the queue must yield the same
        // batches (same workers, same items, same indices) and the same
        // final universe as replaying it from memory.
        let d = arbitrary_dataset(items, workers, labels, seed);
        let mut rng = seeded(seed ^ 0xfeed);
        let batches = WorkerStream::new(&d, batch_size, &mut rng).into_batches();
        let (producer, mut live) = queue(items, workers, labels);
        for b in &batches {
            producer.push_workers(&d.answers, &b.workers).unwrap();
        }
        drop(producer);
        let mut memory = MemorySource::new(&d.answers, batches);
        while let Some(want) = memory.next_batch() {
            let got = live.next_batch().expect("queue has the same batch count");
            prop_assert_eq!(got.index, want.index);
            prop_assert_eq!(got.workers, want.workers);
            prop_assert_eq!(got.items, want.items);
        }
        prop_assert!(live.next_batch().is_none());
        prop_assert!(live.next_batch().is_none(), "stays exhausted");
        prop_assert_eq!(live.answers().num_answers(), d.answers.num_answers());
        for a in d.answers.iter() {
            prop_assert_eq!(
                live.answers().get(a.item as usize, a.worker as usize),
                Some(&a.labels)
            );
        }
    }
}

#[test]
fn queue_fed_engine_is_bit_identical_to_memory_fed() {
    // The strongest drain-semantics statement: an incremental engine driven
    // from the queue matches one driven from memory, bit for bit.
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), 6011);
    let d = &sim.dataset;
    let mut rng = seeded(6012);
    let batches = WorkerStream::new(d, 7, &mut rng).into_batches();

    let mut from_memory = engine_for(Method::CpaSvi, d, 13);
    drive(
        from_memory.as_mut(),
        &mut MemorySource::new(&d.answers, batches.clone()),
    );

    let (producer, mut live) = queue(d.num_items(), d.num_workers(), d.num_labels());
    for b in &batches {
        producer.push_workers(&d.answers, &b.workers).unwrap();
    }
    drop(producer);
    let mut from_queue = engine_for(Method::CpaSvi, d, 13);
    drive(from_queue.as_mut(), &mut live);

    assert_eq!(from_queue.predict_all(), from_memory.predict_all());
    assert_eq!(
        from_queue.seen_answers().num_answers(),
        from_memory.seen_answers().num_answers()
    );
    let (a, b) = (from_queue.estimate(), from_memory.estimate());
    assert_eq!(a.soft, b.soft);
    assert_eq!(a.worker_weight, b.worker_weight);
}
