//! Checkpoint/resume determinism and golden-parity tests for the uniform
//! `Engine` interface.
//!
//! Contract 1 (resume): pausing any engine mid-stream — snapshot → JSON →
//! restore — and continuing must be **bit-identical** to never pausing, at
//! every thread count. Exercised for the online engine (whose learning-rate
//! schedule makes this the hardest case) at 1 and 4 threads, plus the
//! `CPA_TEST_THREADS` CI matrix value.
//!
//! Contract 2 (golden): every method's `predict_all()` through the `Engine`
//! trait must match its pre-refactor direct API output on the paper's
//! Table 1 fixture.

use cpa::baselines::bcc::CommunityBcc;
use cpa::baselines::ds::DawidSkene;
use cpa::baselines::mv::MajorityVoting;
use cpa::baselines::wmv::WeightedMajorityVoting;
use cpa::baselines::Aggregator;
use cpa::core::engine::{drive, Checkpoint, Engine};
use cpa::core::gibbs::{fit_gibbs, GibbsSchedule};
use cpa::core::{CpaModel, OnlineCpa};
use cpa::data::dataset::Dataset;
use cpa::data::labels::LabelSet;
use cpa::data::profile::DatasetProfile;
use cpa::data::simulate::simulate;
use cpa::data::stream::{BatchSource, MemorySource, WorkerStream};
use cpa::eval::runner::{
    cpa_config, engine_for, method_source, restore_engine, run_method, Method,
};
use cpa::math::rng::seeded;

/// Fingerprints a parameter matrix set exactly (bit patterns, not `==` on
/// floats, so `-0.0 != 0.0` and NaNs would be caught too).
fn param_bits(params: &cpa::core::params::VariationalParams) -> Vec<u64> {
    params
        .kappa
        .as_slice()
        .iter()
        .chain(params.phi.as_slice())
        .chain(params.mu.as_slice())
        .chain(params.lambda.as_slice())
        .chain(params.zeta.as_slice())
        .map(|x| x.to_bits())
        .collect()
}

/// Thread counts to pin: 1 and 4 (the satellite's requirement), plus the CI
/// matrix value when it differs.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![1usize, 4];
    if let Some(n) = std::env::var("CPA_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0 && !counts.contains(&n))
    {
        counts.push(n);
    }
    counts
}

#[test]
fn online_resume_is_bit_identical_to_uninterrupted_fit() {
    let sim = simulate(&DatasetProfile::movie().scaled(0.08), 2203);
    let d = &sim.dataset;
    let mut rng = seeded(2204);
    let batches = WorkerStream::new(d, 10, &mut rng).into_batches();
    assert!(
        batches.len() >= 4,
        "need enough batches to pause mid-stream"
    );
    let pause_at = batches.len() / 2;

    for threads in thread_counts() {
        let cfg = cpa_config(2203).with_threads(threads);
        let fresh = || {
            OnlineCpa::new(
                cfg.clone(),
                d.num_items(),
                d.num_workers(),
                d.num_labels(),
                0.875,
            )
        };

        // Uninterrupted run.
        let mut uninterrupted = fresh();
        for batch in &batches {
            uninterrupted.partial_fit(&d.answers, batch);
        }

        // Paused run: half the stream, snapshot → JSON → restore, continue.
        let mut paused = fresh();
        for batch in &batches[..pause_at] {
            paused.partial_fit(&d.answers, batch);
        }
        let json = paused.snapshot().to_json();
        drop(paused);
        let mut resumed = OnlineCpa::restore(Checkpoint::from_json(&json).unwrap())
            .expect("restore mid-stream checkpoint");
        assert_eq!(resumed.batches_seen(), pause_at);
        for batch in &batches[pause_at..] {
            resumed.partial_fit(&d.answers, batch);
        }

        assert_eq!(
            param_bits(uninterrupted.params()),
            param_bits(resumed.params()),
            "parameters diverged after resume at {threads} thread(s)"
        );
        assert_eq!(
            uninterrupted.predict_all(),
            resumed.predict_all(),
            "predictions diverged after resume at {threads} thread(s)"
        );
    }
}

#[test]
fn every_engine_resumes_mid_stream_identically() {
    // The same pause/resume protocol, through `dyn Engine`, for all seven
    // methods: continue both runs from the same remaining batches and
    // require identical final predictions.
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), 2207);
    let d = &sim.dataset;
    let mut rng = seeded(2208);
    let batches = WorkerStream::new(d, 8, &mut rng).into_batches();
    let pause_at = batches.len() / 2;

    for method in Method::all() {
        let run_full = |engine: &mut dyn Engine| {
            let mut source = MemorySource::new(&d.answers, batches.clone());
            drive(engine, &mut source);
            engine.predict_all()
        };
        let mut uninterrupted = engine_for(method, d, 11);
        let expected = run_full(uninterrupted.as_mut());

        let mut paused = engine_for(method, d, 11);
        let mut head = MemorySource::new(&d.answers, batches[..pause_at].to_vec());
        while let Some(batch) = head.next_batch() {
            paused.ingest(head.answers(), &batch);
        }
        let json = paused.snapshot().to_json();
        let mut resumed = restore_engine(Checkpoint::from_json(&json).unwrap())
            .unwrap_or_else(|e| panic!("{}: {e}", method.name()));
        let mut tail = MemorySource::new(&d.answers, batches[pause_at..].to_vec());
        drive(resumed.as_mut(), &mut tail);

        assert_eq!(resumed.name(), method.name());
        assert_eq!(
            resumed.predict_all(),
            expected,
            "{} diverged after mid-stream resume",
            method.name()
        );
        assert_eq!(
            resumed.seen_answers().num_answers(),
            d.answers.num_answers(),
            "{} lost answers across the checkpoint",
            method.name()
        );
    }
}

#[test]
fn golden_engine_predictions_match_direct_apis_on_table1() {
    let (answers, truth) = cpa::baselines::fixtures::table1();
    let dataset = Dataset::new("table1", answers.clone(), truth);
    let seed = 17;

    let direct: Vec<(Method, Vec<LabelSet>)> = vec![
        (Method::Mv, MajorityVoting::new().aggregate(&answers)),
        (
            Method::Wmv,
            WeightedMajorityVoting::new().aggregate(&answers),
        ),
        (Method::Em, DawidSkene::new().aggregate(&answers)),
        (Method::Cbcc, CommunityBcc::new().aggregate(&answers)),
        (
            Method::Gibbs,
            fit_gibbs(&cpa_config(seed), GibbsSchedule::default(), &answers).predict_all(&answers),
        ),
        (
            Method::Cpa,
            CpaModel::new(cpa_config(seed))
                .fit(&answers)
                .predict_all(&answers),
        ),
        (Method::CpaSvi, {
            // The direct online path over exactly the batches run_method uses.
            let mut online = OnlineCpa::new(
                cpa_config(seed),
                dataset.num_items(),
                dataset.num_workers(),
                dataset.num_labels(),
                cpa::eval::runner::FORGETTING_RATE,
            );
            let mut source = method_source(Method::CpaSvi, &dataset, seed);
            while let Some(batch) = source.next_batch() {
                online.partial_fit(source.answers(), &batch);
            }
            OnlineCpa::predict_all(&online)
        }),
    ];

    for (method, expected) in direct {
        let got = run_method(method, &dataset, seed);
        assert_eq!(
            got,
            expected,
            "{} through dyn Engine diverged from its direct API on table1",
            method.name()
        );
    }
}

#[test]
fn jsonl_replay_drives_engines_identically_to_memory() {
    // Record a live stream to JSONL, replay it, and require the replayed
    // engine to match the in-memory one bit-for-bit.
    let sim = simulate(&DatasetProfile::movie().scaled(0.05), 2213);
    let d = &sim.dataset;
    let mut rng = seeded(2214);
    let stream = WorkerStream::new(d, 9, &mut rng);
    let jsonl = cpa::data::io::batches_to_jsonl(&d.answers, stream.batches());

    let mut live = engine_for(Method::CpaSvi, d, 23);
    let mut live_source = MemorySource::new(&d.answers, stream.into_batches());
    drive(live.as_mut(), &mut live_source);

    let mut replay = cpa::data::io::JsonlReplay::from_jsonl(
        &jsonl,
        d.num_items(),
        d.num_workers(),
        d.num_labels(),
    )
    .expect("replay parses");
    let mut replayed = engine_for(Method::CpaSvi, d, 23);
    drive(replayed.as_mut(), &mut replay);

    assert_eq!(replayed.predict_all(), live.predict_all());
    assert_eq!(
        replayed.seen_answers().num_answers(),
        live.seen_answers().num_answers()
    );
}
