//! Read/write stress: concurrent readers against a mutating fleet, locking
//! the epoch-published read-view contract end to end.
//!
//! Contract 1 (untorn, epoch-tagged reads): N reader clients hammer
//! `Predict` while a writer client streams ingests and refits. Every reply
//! carries an epoch tag; a reader's epochs never go backwards, and any two
//! replies tagged with the same epoch — same reader or different readers —
//! are bit-identical. A torn view (predictions mixing two fleet states)
//! would either break that equality or be caught by contract 2.
//!
//! Contract 2 (replay-to-epoch): for every `(epoch, predictions)` any
//! reader observed, replaying the server's recorded op-log on a fresh fleet
//! until `Fleet::replay_to_epoch` reaches that epoch reproduces the served
//! predictions bit for bit.
//!
//! Contract 3 (final state): the final epoch's predictions equal the
//! in-process fleet on the same mutation order, and a client that observed
//! its own mutation ack never reads an older epoch afterwards
//! (read-your-writes through the publish-before-ack ordering).
//!
//! Contract 4 (path equivalence): a server with the view read path
//! disabled (`serve_reads_from_views: false`, every read through the
//! driver) serves the same predictions and tags as the view-serving
//! default — for full reads and for item-ranged reads alike.

use cpa::data::labels::LabelSet;
use cpa::data::stream::{WorkerBatch, WorkerStream};
use cpa::eval::runner::Method;
use cpa::math::rng::seeded;
use cpa::serve::{Fleet, FleetOp};
use cpa::transport::{FleetClient, FleetServer, ServerConfig};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const SEED: u64 = 9431;
const READERS: usize = 3;

fn fixture() -> (cpa::data::dataset::Dataset, Vec<WorkerBatch>) {
    let sim = cpa::data::simulate::simulate(
        &cpa::data::profile::DatasetProfile::movie().scaled(0.05),
        SEED,
    );
    let mut rng = seeded(SEED + 1);
    let batches = WorkerStream::new(&sim.dataset, 8, &mut rng).into_batches();
    assert!(batches.len() >= 4, "need enough batches to stress with");
    (sim.dataset, batches)
}

/// A 2-shard fleet of batch engines — `Refit` runs the full inference, so
/// the writer's refits are genuinely long mutations for readers to race.
fn fleet_for(d: &cpa::data::dataset::Dataset) -> Fleet {
    let (i, u, c) = (d.num_items(), d.num_workers(), d.num_labels());
    Fleet::new(2, 2, i, u, c, |_| Method::Cpa.engine(i, u, c, SEED))
}

fn ingest_ops(d: &cpa::data::dataset::Dataset, batches: &[WorkerBatch]) -> Vec<FleetOp> {
    batches
        .iter()
        .map(|b| FleetOp::ingest_from(&d.answers, b))
        .collect()
}

/// Folds one observed `(epoch, predictions)` sample into a per-epoch map,
/// asserting bit-identity against anything already recorded for that epoch.
fn record(seen: &mut BTreeMap<u64, Vec<LabelSet>>, epoch: u64, preds: Vec<LabelSet>, who: &str) {
    match seen.get(&epoch) {
        Some(prev) => assert_eq!(prev, &preds, "{who}: torn read at epoch {epoch}"),
        None => {
            seen.insert(epoch, preds);
        }
    }
}

#[test]
fn concurrent_reads_are_epoch_consistent_and_replay_bit_identically() {
    let (d, batches) = fixture();
    let ops = ingest_ops(&d, &batches);

    let server = FleetServer::bind(
        "127.0.0.1:0",
        ServerConfig {
            max_clients: READERS + 1,
            record_ops: true,
            ..ServerConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let fleet = fleet_for(&d);
    let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

    let final_epoch = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    // Writer: stream every ingest with a mid-stream refit (a long mutation
    // under the batch engine) and a final refit. Mutation acks must count
    // epochs densely: 1, 2, 3, … in ack order on this connection.
    let writer = std::thread::spawn({
        let done = done.clone();
        let final_epoch = final_epoch.clone();
        let ops = ops.clone();
        move || {
            let mut client = FleetClient::connect(addr).expect("writer connects");
            let mut last = 0u64;
            let half = ops.len() / 2;
            for (n, op) in ops.into_iter().enumerate() {
                let FleetOp::Ingest { workers, answers } = op else {
                    unreachable!("ingest_ops produces only ingests")
                };
                let (_, epoch) = client.ingest_tagged(workers, answers).expect("ingest");
                assert_eq!(epoch, last + 1, "mutation acks must count epochs densely");
                last = epoch;
                if n + 1 == half {
                    last = client.refit_tagged().expect("mid-stream refit");
                }
            }
            last = client.refit_tagged().expect("final refit");
            final_epoch.store(last, Ordering::SeqCst);
            done.store(true, Ordering::SeqCst);
            client
        }
    });

    // Readers: hammer Predict concurrently with the writer until they have
    // seen the final epoch, recording one predictions vector per epoch and
    // asserting every repeat at the same epoch is bit-identical.
    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let done = done.clone();
            let final_epoch = final_epoch.clone();
            std::thread::spawn(move || {
                let mut client = FleetClient::connect(addr).expect("reader connects");
                let mut seen: BTreeMap<u64, Vec<LabelSet>> = BTreeMap::new();
                let mut last = 0u64;
                loop {
                    let (preds, epoch) = client.predict_tagged().expect("predict");
                    assert!(
                        epoch >= last,
                        "reader {r}: epoch went backwards ({last} -> {epoch})"
                    );
                    last = epoch;
                    record(&mut seen, epoch, preds, &format!("reader {r}"));
                    if done.load(Ordering::SeqCst) && epoch == final_epoch.load(Ordering::SeqCst) {
                        break;
                    }
                }
                seen
            })
        })
        .collect();

    let mut writer_client = writer.join().expect("writer thread");
    let mut merged: BTreeMap<u64, Vec<LabelSet>> = BTreeMap::new();
    for (r, reader) in readers.into_iter().enumerate() {
        for (epoch, preds) in reader.join().expect("reader thread") {
            record(&mut merged, epoch, preds, &format!("merge of reader {r}"));
        }
    }
    writer_client.shutdown().expect("shutdown");
    drop(writer_client);
    let outcome = running.join().expect("server thread");

    let last = final_epoch.load(Ordering::SeqCst);
    assert!(last > 0 && merged.contains_key(&last));
    assert_eq!(outcome.fleet.epoch(), last, "server stopped mid-mutation?");

    // Contract 2: replay the recorded op-log prefix up to each observed
    // epoch; the fresh fleet must reproduce the served predictions exactly.
    // (`merged` ascends, so one pass through the log visits every epoch.)
    let mut log = outcome.op_log.clone().into_iter();
    let mut replayed = fleet_for(&d);
    for (&epoch, preds) in &merged {
        replayed.replay_to_epoch(&mut log, epoch);
        assert_eq!(
            replayed.epoch(),
            epoch,
            "op-log too short for epoch {epoch}"
        );
        assert_eq!(
            &replayed.predict_all(),
            preds,
            "replay to epoch {epoch} diverged from what readers were served"
        );
    }

    // Contract 3: the final epoch equals the in-process fleet on the same
    // mutation order.
    let mutations: Vec<FleetOp> = outcome
        .op_log
        .iter()
        .filter(|op| op.is_mutation())
        .cloned()
        .collect();
    let mut reference = fleet_for(&d);
    reference.replay(mutations);
    assert_eq!(reference.epoch(), last);
    assert_eq!(
        reference.predict_all(),
        merged[&last],
        "final served predictions diverged from the in-process fleet"
    );
}

#[test]
fn a_client_never_reads_an_epoch_older_than_its_own_ack() {
    let (d, batches) = fixture();
    let server = FleetServer::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let addr = server.local_addr().expect("addr");
    let fleet = fleet_for(&d);
    let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));

    let mut client = FleetClient::connect(addr).expect("connect");
    for op in ingest_ops(&d, &batches).into_iter().take(4) {
        let FleetOp::Ingest { workers, answers } = op else {
            unreachable!()
        };
        let (_, acked) = client.ingest_tagged(workers, answers).expect("ingest");
        let (_, read) = client.predict_tagged().expect("predict");
        // The new view is published before the mutation ack is sent, so a
        // client that saw its ack can never read an older epoch.
        assert!(read >= acked, "read epoch {read} older than acked {acked}");
    }
    client.shutdown().expect("shutdown");
    running.join().expect("server joins");
}

#[test]
fn driver_served_reads_match_view_served_reads() {
    let (d, batches) = fixture();
    let probe: Vec<usize> = (0..d.num_items()).step_by(5).collect();
    let mut results: Vec<(Vec<LabelSet>, u64)> = Vec::new();
    let mut ranged: Vec<(Vec<LabelSet>, u64)> = Vec::new();
    for serve_reads_from_views in [true, false] {
        let server = FleetServer::bind(
            "127.0.0.1:0",
            ServerConfig {
                serve_reads_from_views,
                ..ServerConfig::default()
            },
        )
        .expect("bind");
        let addr = server.local_addr().expect("addr");
        let fleet = fleet_for(&d);
        let running = std::thread::spawn(move || server.serve(fleet).expect("serve"));
        let mut client = FleetClient::connect(addr).expect("connect");
        for op in ingest_ops(&d, &batches) {
            let FleetOp::Ingest { workers, answers } = op else {
                unreachable!()
            };
            client.ingest(workers, answers).expect("ingest");
        }
        client.refit_all().expect("refit");
        results.push(client.predict_tagged().expect("predict"));
        ranged.push(client.predict_items_tagged(probe.clone()).expect("ranged"));
        client.shutdown().expect("shutdown");
        running.join().expect("server joins");
    }
    assert_eq!(
        results[0], results[1],
        "the view fast path and the driver read path must serve identical replies"
    );
    assert_eq!(
        ranged[0], ranged[1],
        "ranged reads must be path-independent too"
    );
    let sliced: Vec<LabelSet> = probe.iter().map(|&i| results[0].0[i].clone()).collect();
    assert_eq!(
        ranged[0],
        (sliced, results[0].1),
        "a ranged read is exactly a slice of the full read at the same epoch"
    );
}
